#include "spectral/rsb.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"
#include "graph/recursive_split.hpp"
#include "spectral/multilevel.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::all_parts_used;
using testing::max_size_deviation;

TEST(Rsb, BisectsTwoCliquesAtTheBridge) {
  const Graph g = make_two_cliques(8);
  Rng rng(3);
  const auto a = spectral_bisect(g, rng);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);  // only the bridge
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(Rsb, PathBisectionCutsOneEdge) {
  const Graph g = make_path(20);
  Rng rng(5);
  const auto a = spectral_bisect(g, rng);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(Rsb, GridBisectionNearOptimal) {
  // Optimal bisection of an 8x8 grid cuts 8 edges.
  const Graph g = make_grid(8, 8);
  Rng rng(7);
  const auto a = spectral_bisect(g, rng);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_LE(m.total_cut(), 10.0);
  EXPECT_LE(max_size_deviation(a, 2), 1);
}

class RsbPartsTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RsbPartsTest, BalancedValidAndAllPartsUsed) {
  const auto [mesh_size, k] = GetParam();
  const Mesh mesh = paper_mesh(static_cast<VertexId>(mesh_size));
  Rng rng(11);
  const auto a =
      rsb_partition(mesh.graph, static_cast<PartId>(k), rng);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, a, static_cast<PartId>(k)));
  EXPECT_TRUE(all_parts_used(a, static_cast<PartId>(k)));
  EXPECT_LE(max_size_deviation(a, static_cast<PartId>(k)), 2);
  // A spectral cut of a planar-ish mesh should be far below the edge total.
  const auto m = compute_metrics(mesh.graph, a, static_cast<PartId>(k));
  EXPECT_LT(m.total_cut(),
            0.5 * static_cast<double>(mesh.graph.num_edges()));
}

INSTANTIATE_TEST_SUITE_P(
    PaperSizes, RsbPartsTest,
    ::testing::Combine(::testing::Values(78, 144, 213),
                       ::testing::Values(2, 4, 8)));

TEST(Rsb, NonPowerOfTwoParts) {
  const Mesh mesh = paper_mesh(98);
  Rng rng(13);
  const auto a = rsb_partition(mesh.graph, 3, rng);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, a, 3));
  EXPECT_TRUE(all_parts_used(a, 3));
  EXPECT_LE(max_size_deviation(a, 3), 2);
}

TEST(Rsb, SinglePartIsTrivial) {
  const Graph g = make_grid(4, 4);
  Rng rng(17);
  const auto a = rsb_partition(g, 1, rng);
  for (PartId p : a) EXPECT_EQ(p, 0);
}

TEST(Rsb, PartsEqualVerticesGivesSingletons) {
  const Graph g = make_cycle(6);
  Rng rng(19);
  const auto a = rsb_partition(g, 6, rng);
  EXPECT_TRUE(all_parts_used(a, 6));
}

TEST(Rsb, MorePartsThanVerticesRejected) {
  const Graph g = make_path(3);
  Rng rng(23);
  EXPECT_THROW(rsb_partition(g, 4, rng), Error);
}

TEST(Rsb, HandlesDisconnectedGraphs) {
  GraphBuilder b(12);
  for (VertexId v = 0; v < 5; ++v) b.add_edge(v, v + 1);  // path 0-5
  for (VertexId v = 6; v < 11; ++v) b.add_edge(v, v + 1); // path 6-11
  const Graph g = b.build();
  Rng rng(29);
  const auto a = rsb_partition(g, 2, rng);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_LE(m.total_cut(), 1.0);  // components pack into sides
  EXPECT_LE(max_size_deviation(a, 2), 1);
}

TEST(Rsb, WeightedVerticesBalanceByWeight) {
  GraphBuilder b(6);
  for (VertexId v = 0; v + 1 < 6; ++v) b.add_edge(v, v + 1);
  b.set_vertex_weight(0, 5.0);  // heavy head
  const Graph g = b.build();
  Rng rng(31);
  const auto a = rsb_partition(g, 2, rng);
  const auto m = compute_metrics(g, a, 2);
  // Total weight 10: sides should be 5 / 5 (head alone vs the rest).
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(RecursiveSplit, OrderCallbackContract) {
  // A deliberately reversed order: the driver must still produce a valid,
  // balanced partition.
  const Graph g = make_path(10);
  Rng rng(37);
  const auto a = recursive_split_partition(
      g, 2, rng, [](const Graph& sub, Rng&) {
        std::vector<VertexId> order(
            static_cast<std::size_t>(sub.num_vertices()));
        for (VertexId v = 0; v < sub.num_vertices(); ++v) {
          order[static_cast<std::size_t>(v)] = sub.num_vertices() - 1 - v;
        }
        return order;
      });
  ASSERT_TRUE(is_valid_assignment(g, a, 2));
  EXPECT_LE(max_size_deviation(a, 2), 1);
}

TEST(ComponentPackedBfsOrder, CoversAllVerticesOnce) {
  GraphBuilder b(10);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  const auto order = component_packed_bfs_order(b.build());
  ASSERT_EQ(order.size(), 10u);
  std::vector<char> seen(10, 0);
  for (VertexId v : order) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST(Multilevel, QualityComparableToFlatRsb) {
  const Mesh mesh = paper_mesh(279);
  Rng rng(41);
  MultilevelOptions opt;
  const auto ml = multilevel_partition(mesh.graph, 8, rng, opt);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, ml, 8));
  EXPECT_TRUE(all_parts_used(ml, 8));
  const auto flat = rsb_partition(mesh.graph, 8, rng);
  const auto m_ml = compute_metrics(mesh.graph, ml, 8);
  const auto m_flat = compute_metrics(mesh.graph, flat, 8);
  // Multilevel with KL refinement should be within 40% of flat RSB (and is
  // usually better).
  EXPECT_LE(m_ml.total_cut(), 1.4 * m_flat.total_cut());
  EXPECT_LE(m_ml.imbalance_sq, 32.0);
}

TEST(Multilevel, SmallGraphFallsThrough) {
  // Graph already below the coarse target: no levels, plain RSB + KL.
  const Graph g = make_grid(4, 4);
  Rng rng(43);
  const auto a = multilevel_partition(g, 2, rng);
  ASSERT_TRUE(is_valid_assignment(g, a, 2));
  EXPECT_LE(max_size_deviation(a, 2), 1);
}

}  // namespace
}  // namespace gapart
