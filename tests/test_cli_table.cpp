#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

namespace gapart {
namespace {

CliArgs make_args(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, ParsesNamedAndPositional) {
  const auto args =
      make_args({"prog", "--gens=100", "pos1", "--quick", "pos2"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_TRUE(args.has("gens"));
  EXPECT_EQ(args.integer("gens", 0), 100);
  EXPECT_TRUE(args.flag("quick"));
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
}

TEST(CliArgs, DefaultsWhenAbsent) {
  const auto args = make_args({"prog"});
  EXPECT_FALSE(args.has("gens"));
  EXPECT_EQ(args.integer("gens", 42), 42);
  EXPECT_DOUBLE_EQ(args.real("rate", 0.5), 0.5);
  EXPECT_EQ(args.str("name", "dflt"), "dflt");
  EXPECT_FALSE(args.flag("quick"));
  EXPECT_TRUE(args.flag("on", true));
}

TEST(CliArgs, BooleanValueForms) {
  const auto args = make_args({"p", "--a=true", "--b=0", "--c=off", "--d=yes"});
  EXPECT_TRUE(args.flag("a"));
  EXPECT_FALSE(args.flag("b"));
  EXPECT_FALSE(args.flag("c"));
  EXPECT_TRUE(args.flag("d"));
}

TEST(CliArgs, MalformedNumberThrows) {
  const auto args = make_args({"p", "--gens=abc"});
  EXPECT_THROW(args.integer("gens", 0), Error);
}

TEST(CliArgs, MalformedBoolThrows) {
  const auto args = make_args({"p", "--q=maybe"});
  EXPECT_THROW(args.flag("q"), Error);
}

TEST(CliArgs, RealParsing) {
  const auto args = make_args({"p", "--rate=0.25"});
  EXPECT_DOUBLE_EQ(args.real("rate", 0.0), 0.25);
}

TEST(CliArgs, UnusedTracksUnqueriedFlags) {
  const auto args = make_args({"p", "--used=1", "--typo=2"});
  (void)args.integer("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"graph", "cut"});
  t.add_row({"grid8", "14"});
  t.start_row();
  t.append("mesh144");
  t.append(57.0, 0);
  const std::string s = t.str();
  EXPECT_NE(s.find("graph"), std::string::npos);
  EXPECT_NE(s.find("grid8"), std::string::npos);
  EXPECT_NE(s.find("mesh144"), std::string::npos);
  EXPECT_NE(s.find("57"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxxxxxx", "1"});
  t.add_row({"y", "2"});
  std::istringstream is(t.str());
  std::string header;
  std::string rule;
  std::string r1;
  std::string r2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, r1);
  std::getline(is, r2);
  // Column b starts at the same offset in both rows.
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(TextTable, WrongArityRejected) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
  t.start_row();
  t.append("1");
  t.append("2");
  EXPECT_THROW(t.append("3"), Error);
}

TEST(TextTable, AppendBeforeStartRowRejected) {
  TextTable t({"a"});
  EXPECT_THROW(t.append("x"), Error);
}

TEST(TextTable, RuleRowRendersAsDashes) {
  TextTable t({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  std::istringstream is(t.str());
  std::string line;
  int dash_lines = 0;
  while (std::getline(is, line)) {
    if (!line.empty() && line.find_first_not_of('-') == std::string::npos) {
      ++dash_lines;
    }
  }
  EXPECT_EQ(dash_lines, 2);  // header rule + explicit rule
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
}

TEST(EmptyTableHeaderRejected, Throws) {
  EXPECT_THROW(TextTable({}), Error);
}

}  // namespace
}  // namespace gapart
