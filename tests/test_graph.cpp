#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gapart {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  GraphBuilder b(0);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.total_vertex_weight(), 0.0);
}

TEST(GraphBuilder, SingleEdgeSymmetric) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  ASSERT_EQ(g.degree(0), 1);
  ASSERT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.neighbors(0)[0], 1);
  EXPECT_EQ(g.neighbors(1)[0], 0);
}

TEST(GraphBuilder, AdjacencySortedAscending) {
  GraphBuilder b(5);
  b.add_edge(0, 4);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphBuilder, DuplicateEdgesMergeWeights) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.5);
  b.add_edge(1, 0, 2.5);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1).value(), 4.0);
  EXPECT_DOUBLE_EQ(g.edge_weight(1, 0).value(), 4.0);
}

TEST(GraphBuilder, SelfLoopsIgnored) {
  GraphBuilder b(3);
  b.add_edge(1, 1);
  b.add_edge(0, 2);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(GraphBuilder, OutOfRangeRejected) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), Error);
  EXPECT_THROW(b.add_edge(-1, 1), Error);
  EXPECT_THROW(b.set_vertex_weight(5, 1.0), Error);
}

TEST(GraphBuilder, NonPositiveWeightsRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 1, 0.0), Error);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), Error);
  EXPECT_THROW(b.set_vertex_weight(0, 0.0), Error);
}

TEST(GraphBuilder, VertexWeightsDefaultToUnit) {
  GraphBuilder b(4);
  const Graph g = b.build();
  EXPECT_TRUE(g.unit_weights());
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 4.0);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(g.vertex_weight(v), 1.0);
  }
}

TEST(GraphBuilder, WeightedGraphDetected) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.set_vertex_weight(0, 3.0);
  const Graph g = b.build();
  EXPECT_FALSE(g.unit_weights());
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 4.0);
}

TEST(GraphBuilder, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g1 = b.build();
  b.add_edge(1, 2);
  const Graph g2 = b.build();
  EXPECT_EQ(g1.num_edges(), 1);
  EXPECT_EQ(g2.num_edges(), 2);
  EXPECT_DOUBLE_EQ(g2.total_vertex_weight(), 3.0);
}

TEST(Graph, HasEdgeAndWeightLookup) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2);
  const Graph g = b.build();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_DOUBLE_EQ(g.edge_weight(0, 1).value(), 2.0);
  EXPECT_FALSE(g.edge_weight(0, 2).has_value());
}

TEST(Graph, WeightedDegree) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2.0);
  b.add_edge(0, 2, 0.5);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 2.5);
  EXPECT_DOUBLE_EQ(g.weighted_degree(1), 2.0);
}

TEST(Graph, CoordinatesRoundTrip) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.set_coordinate(0, {1.0, 2.0});
  b.set_coordinate(1, {-3.0, 4.5});
  const Graph g = b.build();
  ASSERT_TRUE(g.has_coordinates());
  EXPECT_EQ(g.coordinate(0), (Point2{1.0, 2.0}));
  EXPECT_EQ(g.coordinate(1), (Point2{-3.0, 4.5}));
}

TEST(Graph, SetCoordinatesBulkSizeChecked) {
  GraphBuilder b(3);
  EXPECT_THROW(b.set_coordinates({{0, 0}, {1, 1}}), Error);
}

TEST(Graph, NoCoordinatesByDefault) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_FALSE(b.build().has_coordinates());
}

TEST(Graph, EdgeWeightsParallelToNeighbors) {
  GraphBuilder b(3);
  b.add_edge(1, 0, 10.0);
  b.add_edge(1, 2, 20.0);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(1);
  const auto wgts = g.edge_weights(1);
  ASSERT_EQ(nbrs.size(), 2u);
  ASSERT_EQ(wgts.size(), 2u);
  EXPECT_EQ(nbrs[0], 0);
  EXPECT_DOUBLE_EQ(wgts[0], 10.0);
  EXPECT_EQ(nbrs[1], 2);
  EXPECT_DOUBLE_EQ(wgts[1], 20.0);
}

TEST(Graph, SummaryMentionsSizes) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto s = b.build().summary();
  EXPECT_NE(s.find("|V|=3"), std::string::npos);
  EXPECT_NE(s.find("|E|=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// has_edge / edge_weight use binary search over the sorted adjacency rows;
// guard them (and the sortedness invariant they rely on) against a linear
// ground-truth scan across random weighted multigraph inputs.
TEST(Graph, BinarySearchLookupsMatchLinearScan) {
  Rng rng(0x10c4);
  for (int round = 0; round < 8; ++round) {
    const VertexId n = 2 + static_cast<VertexId>(rng.uniform_int(40));
    GraphBuilder b(n);
    const int edges = rng.uniform_int(4 * n);
    for (int e = 0; e < edges; ++e) {
      const auto u = static_cast<VertexId>(rng.uniform_int(n));
      const auto v = static_cast<VertexId>(rng.uniform_int(n));
      if (u != v) b.add_edge(u, v, 1.0 + rng.uniform_int(9));
    }
    const Graph g = b.build();

    for (VertexId u = 0; u < n; ++u) {
      ASSERT_TRUE(std::is_sorted(g.neighbors(u).begin(),
                                 g.neighbors(u).end()));
      for (VertexId v = 0; v < n; ++v) {
        // Linear ground truth.
        bool found = false;
        double weight = 0.0;
        const auto nbrs = g.neighbors(u);
        const auto wgts = g.edge_weights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (nbrs[i] == v) {
            found = true;
            weight = wgts[i];
            break;
          }
        }
        ASSERT_EQ(g.has_edge(u, v), found) << u << "->" << v;
        const auto w = g.edge_weight(u, v);
        ASSERT_EQ(w.has_value(), found) << u << "->" << v;
        if (found) {
          ASSERT_DOUBLE_EQ(*w, weight) << u << "->" << v;
        }
      }
    }
  }
}

// The counting-sort CSR construction must produce the same canonical graph
// as a naive map-based symmetrize/merge, duplicates and all.
TEST(GraphBuilder, CountingSortConstructionMatchesNaiveMerge) {
  Rng rng(0xcc01);
  for (int round = 0; round < 6; ++round) {
    const VertexId n = 1 + static_cast<VertexId>(rng.uniform_int(30));
    GraphBuilder b(n);
    std::map<std::pair<VertexId, VertexId>, double> naive;
    const int edges = rng.uniform_int(5 * n);
    for (int e = 0; e < edges; ++e) {
      const auto u = static_cast<VertexId>(rng.uniform_int(n));
      const auto v = static_cast<VertexId>(rng.uniform_int(n));
      const double w = 1.0 + rng.uniform_int(5);
      if (u == v) continue;
      b.add_edge(u, v, w);
      naive[{std::min(u, v), std::max(u, v)}] += w;
    }
    const Graph g = b.build();

    EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(naive.size()));
    for (const auto& [uv, w] : naive) {
      ASSERT_TRUE(g.has_edge(uv.first, uv.second));
      ASSERT_DOUBLE_EQ(g.edge_weight(uv.first, uv.second).value(), w);
      ASSERT_DOUBLE_EQ(g.edge_weight(uv.second, uv.first).value(), w);
    }
    // No phantom edges beyond the naive set.
    for (VertexId u = 0; u < n; ++u) {
      for (const VertexId v : g.neighbors(u)) {
        ASSERT_TRUE(naive.count({std::min(u, v), std::max(u, v)}));
      }
    }
  }
}

// The radix (two counting scatters) construction must agree with a
// per-row comparison sort — the implementation it replaced — on graphs with
// heavy duplicate multiplicity and fractional weights.  Weight sums may
// associate in a different order than the sorted-pair reference, hence the
// near (not bitwise) comparison for the fractional case.
TEST(GraphBuilder, RadixConstructionMatchesPerRowSortReference) {
  Rng rng(0xadd1);
  for (int round = 0; round < 8; ++round) {
    const bool fractional = round % 2 == 1;
    const VertexId n = 2 + static_cast<VertexId>(rng.uniform_int(40));
    struct E {
      VertexId u, v;
      double w;
    };
    std::vector<E> raw;
    GraphBuilder b(n);
    const int edges = rng.uniform_int(8 * n);
    for (int e = 0; e < edges; ++e) {
      const auto u = static_cast<VertexId>(rng.uniform_int(n));
      auto v = static_cast<VertexId>(rng.uniform_int(n));
      if (rng.bernoulli(0.3)) v = (u + 1) % n;  // force duplicate pile-ups
      if (u == v) continue;
      const double w = fractional ? 0.25 + rng.uniform() : 1.0 + rng.uniform_int(5);
      b.add_edge(u, v, w);
      raw.push_back({u, v, w});
    }
    const Graph g = b.build();

    // Reference: per-row (neighbour, weight) sort + duplicate merge.
    std::vector<std::vector<std::pair<VertexId, double>>> rows(
        static_cast<std::size_t>(n));
    for (const E& e : raw) {
      rows[static_cast<std::size_t>(e.u)].emplace_back(e.v, e.w);
      rows[static_cast<std::size_t>(e.v)].emplace_back(e.u, e.w);
    }
    for (VertexId u = 0; u < n; ++u) {
      auto& row = rows[static_cast<std::size_t>(u)];
      std::sort(row.begin(), row.end());
      std::vector<VertexId> expect_adj;
      std::vector<double> expect_wgt;
      for (const auto& [v, w] : row) {
        if (!expect_adj.empty() && expect_adj.back() == v) {
          expect_wgt.back() += w;
        } else {
          expect_adj.push_back(v);
          expect_wgt.push_back(w);
        }
      }
      const auto nbrs = g.neighbors(u);
      ASSERT_EQ(std::vector<VertexId>(nbrs.begin(), nbrs.end()), expect_adj)
          << "row " << u;
      const auto wgts = g.edge_weights(u);
      ASSERT_EQ(wgts.size(), expect_wgt.size());
      for (std::size_t i = 0; i < wgts.size(); ++i) {
        if (fractional) {
          ASSERT_NEAR(wgts[i], expect_wgt[i], 1e-12) << "row " << u;
        } else {
          ASSERT_EQ(wgts[i], expect_wgt[i]) << "row " << u;
        }
      }
    }
  }
}

TEST(Graph, CsrConsistencyOnRandomGraph) {
  Rng rng(7);
  GraphBuilder b(50);
  for (int e = 0; e < 200; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform_int(50));
    const auto v = static_cast<VertexId>(rng.uniform_int(50));
    if (u != v) b.add_edge(u, v);
  }
  const Graph g = b.build();
  // Symmetry + sortedness + no self loops + degree sums.
  std::int64_t directed = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (VertexId u : nbrs) {
      EXPECT_NE(u, v);
      EXPECT_TRUE(g.has_edge(u, v)) << u << "<->" << v;
    }
    directed += g.degree(v);
  }
  EXPECT_EQ(directed, 2 * g.num_edges());
}

}  // namespace
}  // namespace gapart
