#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace gapart {
namespace {

TEST(GraphIo, UnweightedRoundTrip) {
  const Graph g = make_grid(4, 4);
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v);
    const auto b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "vertex " << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  EXPECT_TRUE(h.unit_weights());
}

TEST(GraphIo, WeightedRoundTrip) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2.5);
  b.add_edge(1, 2, 1.25);
  b.add_edge(2, 3, 4.0);
  b.set_vertex_weight(0, 3.0);
  b.set_vertex_weight(2, 1.5);
  const Graph g = b.build();
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  EXPECT_FALSE(h.unit_weights());
  EXPECT_DOUBLE_EQ(h.vertex_weight(0), 3.0);
  EXPECT_DOUBLE_EQ(h.vertex_weight(1), 1.0);
  EXPECT_DOUBLE_EQ(h.edge_weight(0, 1).value(), 2.5);
  EXPECT_DOUBLE_EQ(h.edge_weight(2, 3).value(), 4.0);
}

TEST(GraphIo, HeaderFormatCode) {
  const Graph g = make_path(3);
  std::stringstream ss;
  write_graph(ss, g);
  std::string first;
  std::getline(ss, first);
  EXPECT_EQ(first, "3 2");  // unweighted: no fmt code
}

TEST(GraphIo, CommentsSkipped) {
  std::stringstream ss("% a comment\n3 2\n% another\n2\n1 3\n2\n");
  const Graph g = read_graph(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(GraphIo, EdgeCountMismatchRejected) {
  std::stringstream ss("3 5\n2\n1 3\n2\n");
  EXPECT_THROW(read_graph(ss), Error);
}

TEST(GraphIo, NeighborOutOfRangeRejected) {
  std::stringstream ss("3 2\n2\n1 9\n2\n");
  EXPECT_THROW(read_graph(ss), Error);
}

TEST(GraphIo, EmptyInputRejected) {
  std::stringstream ss("");
  EXPECT_THROW(read_graph(ss), Error);
}

TEST(GraphIo, IsolatedVerticesSurvive) {
  GraphBuilder b(5);
  b.add_edge(1, 3);
  std::stringstream ss;
  write_graph(ss, b.build());
  const Graph h = read_graph(ss);
  EXPECT_EQ(h.num_vertices(), 5);
  EXPECT_EQ(h.num_edges(), 1);
  EXPECT_EQ(h.degree(0), 0);
}

TEST(CoordinateIo, RoundTrip) {
  const Graph g = make_grid(3, 3);
  std::stringstream ss;
  write_coordinates(ss, g);
  // Strip coordinates by rebuilding, then re-attach.
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      if (u > v) b.add_edge(v, u);
    }
  }
  const Graph bare = b.build();
  EXPECT_FALSE(bare.has_coordinates());
  const Graph withc = attach_coordinates(bare, ss);
  ASSERT_TRUE(withc.has_coordinates());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(withc.coordinate(v), g.coordinate(v));
  }
}

TEST(CoordinateIo, CountMismatchRejected) {
  const Graph g = make_path(3);
  std::stringstream ss("0 0\n1 1\n");
  EXPECT_THROW(attach_coordinates(g, ss), Error);
}

TEST(CoordinateIo, NoCoordinatesToWriteRejected) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  std::stringstream ss;
  EXPECT_THROW(write_coordinates(ss, b.build()), Error);
}

TEST(PartitionIo, RoundTrip) {
  const Assignment a = {0, 1, 2, 1, 0, 3};
  std::stringstream ss;
  write_partition(ss, a);
  const Assignment b = read_partition(ss);
  EXPECT_EQ(a, b);
}

TEST(PartitionIo, NegativePartRejected) {
  std::stringstream ss("0\n-1\n2\n");
  EXPECT_THROW(read_partition(ss), Error);
}

TEST(FileIo, GraphAndPartitionFiles) {
  const Graph g = make_cycle(7);
  const std::string dir = ::testing::TempDir();
  const std::string gpath = dir + "/gapart_test.graph";
  const std::string ppath = dir + "/gapart_test.part";
  write_graph_file(gpath, g);
  const Graph h = read_graph_file(gpath);
  EXPECT_EQ(h.num_edges(), 7);

  const Assignment a = {0, 0, 1, 1, 2, 2, 0};
  write_partition_file(ppath, a);
  EXPECT_EQ(read_partition_file(ppath), a);
}

TEST(FileIo, MissingFileThrows) {
  EXPECT_THROW(read_graph_file("/nonexistent/path/graph.txt"), Error);
}

}  // namespace
}  // namespace gapart
