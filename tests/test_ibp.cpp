#include "sfc/ibp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::all_parts_used;
using testing::max_size_deviation;

class IbpSchemeTest
    : public ::testing::TestWithParam<std::tuple<IndexScheme, int>> {};

TEST_P(IbpSchemeTest, BalancedValidOnPaperMesh) {
  const auto [scheme, k] = GetParam();
  const Mesh mesh = paper_mesh(167);
  IbpOptions opt;
  opt.scheme = scheme;
  const auto a = ibp_partition(mesh.graph, static_cast<PartId>(k), opt);
  ASSERT_TRUE(is_valid_assignment(mesh.graph, a, static_cast<PartId>(k)));
  EXPECT_TRUE(all_parts_used(a, static_cast<PartId>(k)));
  EXPECT_LE(max_size_deviation(a, static_cast<PartId>(k)), 1);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndParts, IbpSchemeTest,
    ::testing::Combine(::testing::Values(IndexScheme::kRowMajor,
                                         IndexScheme::kShuffledRowMajor,
                                         IndexScheme::kHilbert),
                       ::testing::Values(2, 4, 8)));

TEST(Ibp, GridPartitionIsSpatiallyCoherent) {
  // On a regular grid, the shuffled-row-major IBP into 4 parts should give
  // a cut far below the worst case (locality-preserving index).
  const Graph g = make_grid(16, 16);
  const auto a = ibp_partition(g, 4);
  const auto m = compute_metrics(g, a, 4);
  // Worst case would approach |E|; a quadrant-ish split cuts ~32.
  EXPECT_LE(m.total_cut(), 64.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(Ibp, HilbertBeatsOrEqualsRowMajorOnGrid) {
  const Graph g = make_grid(16, 16);
  IbpOptions row;
  row.scheme = IndexScheme::kRowMajor;
  IbpOptions hil;
  hil.scheme = IndexScheme::kHilbert;
  const double cut_row =
      compute_metrics(g, ibp_partition(g, 8, row), 8).total_cut();
  const double cut_hil =
      compute_metrics(g, ibp_partition(g, 8, hil), 8).total_cut();
  EXPECT_LE(cut_hil, cut_row);
}

TEST(Ibp, SortingPhaseOrdersByIndex) {
  const Mesh mesh = paper_mesh(78);
  const auto idx = ibp_indices(mesh.graph);
  ASSERT_EQ(idx.size(), static_cast<std::size_t>(mesh.graph.num_vertices()));
  // Partition boundaries in sorted order: part ids must be monotone along
  // the sorted index sequence.
  const auto a = ibp_partition(mesh.graph, 4);
  std::vector<VertexId> order(idx.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&idx](VertexId x, VertexId y) {
    return idx[static_cast<std::size_t>(x)] != idx[static_cast<std::size_t>(y)]
               ? idx[static_cast<std::size_t>(x)] <
                     idx[static_cast<std::size_t>(y)]
               : x < y;
  });
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LE(a[static_cast<std::size_t>(order[i])],
              a[static_cast<std::size_t>(order[i + 1])]);
  }
}

TEST(Ibp, WeightedVerticesSplitByWeight) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.set_coordinate(0, {0.0, 0.0});
  b.set_coordinate(1, {0.3, 0.0});
  b.set_coordinate(2, {0.6, 0.0});
  b.set_coordinate(3, {0.9, 0.0});
  b.set_vertex_weight(0, 3.0);  // as heavy as the other three combined
  const Graph g = b.build();
  const auto a = ibp_partition(g, 2);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);  // 3 | 1+1+1
}

TEST(Ibp, GraphWithoutCoordinatesRejected) {
  const Graph g = make_complete(5);
  EXPECT_THROW(ibp_partition(g, 2), Error);
}

TEST(Ibp, SchemeParsing) {
  EXPECT_EQ(parse_index_scheme("row-major"), IndexScheme::kRowMajor);
  EXPECT_EQ(parse_index_scheme("shuffled"), IndexScheme::kShuffledRowMajor);
  EXPECT_EQ(parse_index_scheme("morton"), IndexScheme::kShuffledRowMajor);
  EXPECT_EQ(parse_index_scheme("hilbert"), IndexScheme::kHilbert);
  EXPECT_THROW(parse_index_scheme("zigzag"), Error);
  EXPECT_STREQ(index_scheme_name(IndexScheme::kHilbert), "hilbert");
}

}  // namespace
}  // namespace gapart
