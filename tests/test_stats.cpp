#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gapart {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats rs;
  rs.add(4.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 4.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 4.5);
  EXPECT_DOUBLE_EQ(rs.max(), 4.5);
}

TEST(RunningStats, KnownMoments) {
  RunningStats rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1: sum of squared deviations = 32, / 7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(rs.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, StableUnderLargeOffset) {
  // Welford should survive a huge common offset that would destroy the
  // naive sum-of-squares formula.
  RunningStats rs;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) rs.add(offset + x);
  EXPECT_NEAR(rs.mean() - offset, 2.0, 1e-3);
  EXPECT_NEAR(rs.variance(), 1.0, 1e-3);
}

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Median, EvenCountAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, EmptyIsZero) { EXPECT_EQ(median({}), 0.0); }

TEST(Median, SingleElement) { EXPECT_DOUBLE_EQ(median({7.0}), 7.0); }

TEST(Median, RepeatedValues) {
  EXPECT_DOUBLE_EQ(median({5.0, 5.0, 5.0, 5.0}), 5.0);
}

TEST(Quantile, EmptyIsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
  EXPECT_EQ(quantile({}, 0.0), 0.0);
  EXPECT_EQ(quantile({}, 1.0), 0.0);
}

TEST(Quantile, SingleSampleIsThatSampleAtEveryQ) {
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile({3.25}, q), 3.25) << "q=" << q;
  }
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  // pos = 0.25 * 3 = 0.75 -> between the 1st and 2nd order statistic.
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
}

TEST(Quantile, OutOfRangeQClamps) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 3.0);
}

TEST(Summarize, FullBreakdown) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(MeanSeries, EqualLengths) {
  const auto m = mean_series({{1.0, 2.0}, {3.0, 4.0}});
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 2.0);
  EXPECT_DOUBLE_EQ(m[1], 3.0);
}

TEST(MeanSeries, ShortRunsPadWithFinalValue) {
  // A converged (early-stopped) run holds its final value.
  const auto m = mean_series({{10.0}, {0.0, 2.0, 4.0}});
  ASSERT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m[0], 5.0);
  EXPECT_DOUBLE_EQ(m[1], 6.0);
  EXPECT_DOUBLE_EQ(m[2], 7.0);
}

TEST(MeanSeries, EmptyInput) {
  EXPECT_TRUE(mean_series({}).empty());
}

}  // namespace
}  // namespace gapart
