// End-to-end pipelines exercising several modules together — these mirror
// the experiment harnesses in bench/ at miniature scale.
#include <gtest/gtest.h>

#include "baselines/kl.hpp"
#include "baselines/rcb.hpp"
#include "baselines/rgb.hpp"
#include "common/rng.hpp"
#include "core/dpga.hpp"
#include "core/init.hpp"
#include "core/presets.hpp"
#include "graph/io.hpp"
#include "graph/mesh.hpp"
#include "sfc/ibp.hpp"
#include "spectral/rsb.hpp"
#include "test_util.hpp"

#include <sstream>

namespace gapart {
namespace {

using testing::max_size_deviation;

DpgaConfig mini_paper_dpga(PartId k, Objective obj, int gens) {
  auto cfg = paper_dpga_config(k, obj);
  cfg.num_islands = 4;
  cfg.ga.population_size = 80;
  cfg.ga.max_generations = gens;
  cfg.ga.stall_generations = 0;
  return cfg;
}

TEST(Integration, SeededGaImprovesIbpSolution) {
  // Table 1 pipeline in miniature: IBP seed -> DKNUX GA -> better or equal.
  const Mesh mesh = paper_mesh(144);
  Rng rng(3);
  const auto seed = ibp_partition(mesh.graph, 4);
  const auto cfg = mini_paper_dpga(4, Objective::kTotalComm, 60);
  const double seed_fitness =
      evaluate_fitness(mesh.graph, seed, 4, cfg.ga.fitness);
  auto init =
      make_seeded_population(seed, cfg.ga.population_size, 0.1, rng);
  const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
  EXPECT_GE(res.best_fitness, seed_fitness);
  EXPECT_LE(max_size_deviation(res.best, 4), 2);
}

TEST(Integration, SeededGaImprovesRsbSolution) {
  // Table 2 pipeline in miniature.
  const Mesh mesh = paper_mesh(139);
  Rng rng(5);
  const auto seed = rsb_partition(mesh.graph, 8, rng);
  const auto cfg = mini_paper_dpga(8, Objective::kTotalComm, 60);
  const double seed_fitness =
      evaluate_fitness(mesh.graph, seed, 8, cfg.ga.fitness);
  auto init =
      make_seeded_population(seed, cfg.ga.population_size, 0.1, rng);
  const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
  EXPECT_GE(res.best_fitness, seed_fitness);
}

TEST(Integration, WorstCaseObjectiveOptimizedDirectly) {
  // Table 4 pipeline in miniature: random init, Fitness2.
  const Mesh mesh = paper_mesh(78);
  Rng rng(7);
  const auto cfg = mini_paper_dpga(4, Objective::kWorstComm, 80);
  auto init = make_random_population(mesh.graph.num_vertices(), 4,
                                     cfg.ga.population_size, rng);
  const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
  // The GA must reach a sane worst-part cut (RSB lands around 15-30 here).
  EXPECT_LE(res.best_metrics.max_part_cut, 40.0);
  EXPECT_LE(res.best_metrics.imbalance_sq, 8.0);
}

TEST(Integration, GaOutputNeedsFarLessKlRepairThanRandom) {
  // A DKNUX run should land much closer to a KL fixed point than a random
  // balanced assignment does — evidence the GA found real structure, not
  // just balance.
  const Mesh mesh = paper_mesh(98);
  Rng rng(9);
  auto cfg = mini_paper_dpga(4, Objective::kTotalComm, 150);
  auto init = make_random_population(mesh.graph.num_vertices(), 4,
                                     cfg.ga.population_size, rng);
  const auto res = run_dpga(mesh.graph, cfg, init, rng.split());

  PartitionState ga_state(mesh.graph, res.best, 4);
  const double ga_gain = kl_refine(ga_state).fitness_gain;

  PartitionState random_state(mesh.graph, init[0], 4);
  const double random_gain = kl_refine(random_state).fitness_gain;

  EXPECT_LT(ga_gain, 0.5 * random_gain);
}

TEST(Integration, AllPartitionersProduceComparableQuality) {
  // Cross-method sanity on one mesh: every method valid + balanced-ish;
  // RSB beats the cheap geometric methods or is close.
  const Mesh mesh = paper_mesh(213);
  Rng rng(11);
  const PartId k = 4;
  const auto rsb = rsb_partition(mesh.graph, k, rng);
  const auto rcb = rcb_partition(mesh.graph, k, rng);
  const auto rgb = rgb_partition(mesh.graph, k, rng);
  const auto ibp = ibp_partition(mesh.graph, k);
  for (const auto* a : {&rsb, &rcb, &rgb, &ibp}) {
    ASSERT_TRUE(is_valid_assignment(mesh.graph, *a, k));
    EXPECT_LE(max_size_deviation(*a, k), 2);
  }
  const double cut_rsb = compute_metrics(mesh.graph, rsb, k).total_cut();
  const double cut_rcb = compute_metrics(mesh.graph, rcb, k).total_cut();
  EXPECT_LE(cut_rsb, 1.5 * cut_rcb);
}

TEST(Integration, MeshSurvivesIoRoundTripAndPartitioning) {
  const Mesh mesh = paper_mesh(88);
  std::stringstream gs;
  std::stringstream cs;
  write_graph(gs, mesh.graph);
  write_coordinates(cs, mesh.graph);
  const Graph bare = read_graph(gs);
  const Graph g = attach_coordinates(bare, cs);
  Rng rng(13);
  const auto a = rsb_partition(g, 4, rng);
  const auto b = ibp_partition(g, 4);
  EXPECT_TRUE(is_valid_assignment(g, a, 4));
  EXPECT_TRUE(is_valid_assignment(g, b, 4));
}

TEST(Integration, OperatorOrderingOnRealMesh) {
  // The paper's headline: DKNUX/KNUX converge far better than 2-point at
  // equal budget.  Run a short budget and compare best fitness.
  const Mesh mesh = paper_mesh(144);
  const PartId k = 4;
  Rng rng(17);
  auto init = make_random_population(mesh.graph.num_vertices(), k, 80, rng);

  auto run_with = [&](CrossoverOp op) {
    auto cfg = mini_paper_dpga(k, Objective::kTotalComm, 80);
    cfg.ga.crossover = op;
    return run_dpga(mesh.graph, cfg, init, Rng(23)).best_fitness;
  };
  const double f_dknux = run_with(CrossoverOp::kDknux);
  const double f_2pt = run_with(CrossoverOp::kTwoPoint);
  EXPECT_GT(f_dknux, f_2pt);
}

}  // namespace
}  // namespace gapart
