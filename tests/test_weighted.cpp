// End-to-end coverage of weighted graphs.  The paper assumes unit weights in
// its experiments but states "weighted edges and nodes can also be handled
// easily" (§4) — these tests hold the library to that: every partitioner and
// the GA must balance by VERTEX WEIGHT and cut by EDGE WEIGHT.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/kl.hpp"
#include "common/rng.hpp"
#include "core/dpga.hpp"
#include "core/init.hpp"
#include "core/presets.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"
#include "sfc/ibp.hpp"
#include "spectral/rsb.hpp"

namespace gapart {
namespace {

/// A weighted line: heavy head vertex, and one heavy edge that any sane
/// bisection must avoid cutting.
Graph weighted_line() {
  GraphBuilder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 10.0);  // heavy edge
  b.add_edge(3, 4, 1.0);
  b.add_edge(4, 5, 1.0);
  b.set_vertex_weight(0, 4.0);
  return b.build();
}

/// Copy of a mesh graph with heterogeneous vertex weights: vertices in the
/// left half of the domain cost 3x (e.g. a physics region with more work).
Graph reweighted_mesh(const Mesh& mesh) {
  const Graph& g = mesh.graph;
  GraphBuilder b(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    b.set_vertex_weight(v, g.coordinate(v).x < 0.5 ? 3.0 : 1.0);
    b.set_coordinate(v, g.coordinate(v));
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v) b.add_edge(v, nbrs[i]);
    }
  }
  return b.build();
}

TEST(Weighted, MetricsUseWeights) {
  const Graph g = weighted_line();
  // Split between the heavy edge: cut weight 10.
  const auto m_bad = compute_metrics(g, {0, 0, 0, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(m_bad.total_cut(), 10.0);
  // Split after vertex 0 (weight 4): perfectly weight-balanced (4.5 vs 4.5
  // is impossible; 4 vs 5 gives imbalance 0.5 under the quadratic).
  const auto m_head = compute_metrics(g, {0, 1, 1, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(m_head.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m_head.part_weight[0], 4.0);
  EXPECT_DOUBLE_EQ(m_head.part_weight[1], 5.0);
}

TEST(Weighted, GaAvoidsHeavyEdgeAndBalancesWeight) {
  const Graph g = weighted_line();
  GaConfig cfg;
  cfg.num_parts = 2;
  cfg.population_size = 60;
  cfg.max_generations = 150;
  Rng rng(3);
  auto init = make_random_population(g.num_vertices(), 2,
                                     cfg.population_size, rng);
  const auto res = run_ga(g, cfg, std::move(init), rng.split());
  // Optimal: {0} | {1..5}: cut 1, weights 4 vs 5.
  EXPECT_DOUBLE_EQ(res.best_metrics.total_cut(), 1.0);
  EXPECT_LE(res.best_metrics.imbalance_sq, 0.51);
}

TEST(Weighted, RsbBalancesByWeightOnMesh) {
  const Graph g = reweighted_mesh(paper_mesh(144));
  Rng rng(5);
  const auto a = rsb_partition(g, 4, rng);
  const auto m = compute_metrics(g, a, 4);
  const double mean = g.total_vertex_weight() / 4.0;
  for (double w : m.part_weight) {
    EXPECT_NEAR(w, mean, 4.0) << "part weight far from weighted mean";
  }
}

TEST(Weighted, IbpBalancesByWeightOnMesh) {
  const Graph g = reweighted_mesh(paper_mesh(144));
  const auto a = ibp_partition(g, 4);
  const auto m = compute_metrics(g, a, 4);
  const double mean = g.total_vertex_weight() / 4.0;
  for (double w : m.part_weight) {
    EXPECT_NEAR(w, mean, 4.0);
  }
}

TEST(Weighted, DpgaOnWeightedMeshBeatsItsSeedAndKeepsWeightBalance) {
  const Graph g = reweighted_mesh(paper_mesh(98));
  Rng rng(7);
  const auto seed = rsb_partition(g, 4, rng);
  auto cfg = paper_dpga_config(4, Objective::kTotalComm);
  cfg.num_islands = 4;
  cfg.ga.population_size = 80;
  cfg.ga.max_generations = 80;
  const double seed_fitness = evaluate_fitness(g, seed, 4, cfg.ga.fitness);
  auto init = make_seeded_population(seed, cfg.ga.population_size, 0.1, rng);
  const auto res = run_dpga(g, cfg, std::move(init), rng.split());
  EXPECT_GE(res.best_fitness, seed_fitness);
  const double mean = g.total_vertex_weight() / 4.0;
  for (double w : res.best_metrics.part_weight) {
    EXPECT_NEAR(w, mean, 6.0);
  }
}

TEST(Weighted, KlRespectsWeightedGains) {
  const Graph g = weighted_line();
  // Start with the heavy edge cut; KL must repair it.
  PartitionState state(g, {0, 0, 0, 1, 1, 1}, 2);
  kl_refine(state);
  EXPECT_LT(state.total_cut(), 10.0);
}

TEST(Weighted, IncrementalSeedBalancesByWeight) {
  // Grown graph where new vertices carry weight 2.
  GraphBuilder b(8);
  for (VertexId v = 0; v + 1 < 8; ++v) b.add_edge(v, v + 1);
  b.set_vertex_weight(6, 2.0);
  b.set_vertex_weight(7, 2.0);
  const Graph g = b.build();
  Rng rng(11);
  const Assignment previous = {0, 0, 0, 1, 1, 1};  // 3 vs 3
  const auto seeded = incremental_seed_assignment(g, previous, 2, rng);
  // One heavy vertex must land on each side (4+... wait: adding both to one
  // side gives 3 vs 7; one each gives 5 vs 5).
  const auto m = compute_metrics(g, seeded, 2);
  EXPECT_DOUBLE_EQ(m.part_weight[0], 5.0);
  EXPECT_DOUBLE_EQ(m.part_weight[1], 5.0);
}

TEST(Weighted, GraphIoPreservesWeightedPartitioningResults) {
  const Graph g = weighted_line();
  std::stringstream ss;
  write_graph(ss, g);
  const Graph h = read_graph(ss);
  const Assignment a = {0, 1, 1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(evaluate_fitness(g, a, 2, {}),
                   evaluate_fitness(h, a, 2, {}));
}

}  // namespace
}  // namespace gapart
