#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "core/dpga.hpp"
#include "core/init.hpp"
#include "core/presets.hpp"
#include "core/topology.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

TEST(Topology, HypercubeDegreeAndSymmetry) {
  const auto nbrs = build_topology(TopologyKind::kHypercube, 16);
  ASSERT_EQ(nbrs.size(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(nbrs[static_cast<std::size_t>(i)].size(), 4u);  // 4-cube
    for (int j : nbrs[static_cast<std::size_t>(i)]) {
      // Neighbours differ in exactly one bit.
      const int diff = i ^ j;
      EXPECT_EQ(diff & (diff - 1), 0);
      EXPECT_NE(diff, 0);
      // Symmetric.
      const auto& back = nbrs[static_cast<std::size_t>(j)];
      EXPECT_NE(std::find(back.begin(), back.end(), i), back.end());
    }
  }
}

TEST(Topology, HypercubeRequiresPowerOfTwo) {
  EXPECT_THROW(build_topology(TopologyKind::kHypercube, 12), Error);
  EXPECT_NO_THROW(build_topology(TopologyKind::kHypercube, 8));
}

TEST(Topology, RingDegreeTwo) {
  const auto nbrs = build_topology(TopologyKind::kRing, 5);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(nbrs[static_cast<std::size_t>(i)].size(), 2u);
  }
  EXPECT_EQ(nbrs[0][0], 1);
  EXPECT_EQ(nbrs[0][1], 4);
}

TEST(Topology, RingOfTwoDeduplicates) {
  const auto nbrs = build_topology(TopologyKind::kRing, 2);
  ASSERT_EQ(nbrs[0].size(), 1u);
  EXPECT_EQ(nbrs[0][0], 1);
}

TEST(Topology, TorusDegreeFourWhenLarge) {
  const auto nbrs = build_topology(TopologyKind::kTorus, 16);  // 4x4
  for (const auto& out : nbrs) EXPECT_EQ(out.size(), 4u);
}

TEST(Topology, CompleteAllToAll) {
  const auto nbrs = build_topology(TopologyKind::kComplete, 6);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(nbrs[static_cast<std::size_t>(i)].size(), 5u);
  }
}

TEST(Topology, IsolatedHasNoLinks) {
  const auto nbrs = build_topology(TopologyKind::kIsolated, 8);
  for (const auto& out : nbrs) EXPECT_TRUE(out.empty());
}

TEST(Topology, SingleIslandAlwaysEmpty) {
  for (TopologyKind k : {TopologyKind::kHypercube, TopologyKind::kRing,
                         TopologyKind::kComplete}) {
    const auto nbrs = build_topology(k, 1);
    ASSERT_EQ(nbrs.size(), 1u);
    EXPECT_TRUE(nbrs[0].empty());
  }
}

TEST(Topology, ParseNames) {
  EXPECT_EQ(parse_topology("hypercube"), TopologyKind::kHypercube);
  EXPECT_EQ(parse_topology("ring"), TopologyKind::kRing);
  EXPECT_EQ(parse_topology("torus"), TopologyKind::kTorus);
  EXPECT_EQ(parse_topology("complete"), TopologyKind::kComplete);
  EXPECT_EQ(parse_topology("isolated"), TopologyKind::kIsolated);
  EXPECT_THROW(parse_topology("mesh3d"), Error);
}

DpgaConfig small_dpga(PartId k, int islands, int gens) {
  DpgaConfig cfg;
  cfg.num_islands = islands;
  cfg.topology =
      (islands & (islands - 1)) == 0 && islands > 1
          ? TopologyKind::kHypercube
          : TopologyKind::kRing;
  cfg.migration_interval = 5;
  cfg.ga.num_parts = k;
  cfg.ga.population_size = 16 * islands;
  cfg.ga.max_generations = gens;
  return cfg;
}

TEST(Dpga, SolvesTwoCliques) {
  const Graph g = make_two_cliques(8);
  Rng rng(3);
  const auto cfg = small_dpga(2, 4, 80);
  auto init = make_random_population(g.num_vertices(), 2,
                                     cfg.ga.population_size, rng);
  const auto res = run_dpga(g, cfg, std::move(init), rng.split());
  EXPECT_DOUBLE_EQ(res.best_metrics.total_cut(), 1.0);
  EXPECT_EQ(res.generations, 80);
  EXPECT_EQ(res.island_best_fitness.size(), 4u);
}

TEST(Dpga, DeterministicForSameSeed) {
  const Mesh mesh = paper_mesh(78);
  const auto cfg = small_dpga(4, 4, 20);
  Rng ra(7);
  auto ia = make_random_population(78, 4, cfg.ga.population_size, ra);
  Rng rb(7);
  auto ib = make_random_population(78, 4, cfg.ga.population_size, rb);
  const auto res_a = run_dpga(mesh.graph, cfg, std::move(ia), Rng(5));
  const auto res_b = run_dpga(mesh.graph, cfg, std::move(ib), Rng(5));
  EXPECT_EQ(res_a.best, res_b.best);
  EXPECT_EQ(res_a.evaluations, res_b.evaluations);
}

TEST(Dpga, ParallelMatchesSerialBitForBit) {
  const Mesh mesh = paper_mesh(98);
  auto cfg = small_dpga(4, 4, 15);
  Rng ra(11);
  auto ia = make_random_population(98, 4, cfg.ga.population_size, ra);
  Rng rb(11);
  auto ib = make_random_population(98, 4, cfg.ga.population_size, rb);

  cfg.parallel = false;
  const auto serial = run_dpga(mesh.graph, cfg, std::move(ia), Rng(13));
  cfg.parallel = true;
  const auto parallel = run_dpga(mesh.graph, cfg, std::move(ib), Rng(13));
  EXPECT_EQ(serial.best, parallel.best);
  EXPECT_DOUBLE_EQ(serial.best_fitness, parallel.best_fitness);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
}

TEST(Dpga, MigrationSpreadsEliteGenes) {
  // Seed only island 0 with the optimum (all other islands random): with
  // migration the optimum must reach every island's best-so-far quickly.
  const Graph g = make_two_cliques(10);
  Assignment optimum(20, 0);
  for (std::size_t i = 10; i < 20; ++i) optimum[i] = 1;

  Rng rng(17);
  auto cfg = small_dpga(2, 4, 30);
  cfg.ga.crossover_rate = 0.0;  // isolate migration as the only mixing force
  cfg.ga.mutation_rate = 0.0;
  std::vector<Assignment> init;
  init.push_back(optimum);  // round-robin deal: lands on island 0
  for (int i = 1; i < cfg.ga.population_size; ++i) {
    init.push_back(random_balanced_assignment(20, 2, rng));
  }
  const auto res = run_dpga(g, cfg, std::move(init), rng.split());
  for (double f : res.island_best_fitness) {
    EXPECT_DOUBLE_EQ(f, -2.0);  // every island reached the optimum (cut 1)
  }
}

TEST(Dpga, IsolatedIslandsDoNotMix) {
  const Graph g = make_two_cliques(10);
  Assignment optimum(20, 0);
  for (std::size_t i = 10; i < 20; ++i) optimum[i] = 1;

  Rng rng(19);
  auto cfg = small_dpga(2, 4, 30);
  cfg.topology = TopologyKind::kIsolated;
  cfg.ga.crossover_rate = 0.0;
  cfg.ga.mutation_rate = 0.0;
  std::vector<Assignment> init;
  init.push_back(optimum);
  for (int i = 1; i < cfg.ga.population_size; ++i) {
    init.push_back(random_balanced_assignment(20, 2, rng));
  }
  const auto res = run_dpga(g, cfg, std::move(init), rng.split());
  // Island 0 has it; with crossover/mutation off, at least one other island
  // cannot have reached the optimum.
  int at_optimum = 0;
  for (double f : res.island_best_fitness) {
    if (f == -2.0) ++at_optimum;
  }
  EXPECT_LT(at_optimum, 4);
}

TEST(Dpga, GlobalHistoryMonotone) {
  const Mesh mesh = paper_mesh(88);
  Rng rng(23);
  const auto cfg = small_dpga(4, 4, 25);
  auto init = make_random_population(88, 4, cfg.ga.population_size, rng);
  const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
  ASSERT_FALSE(res.history.empty());
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i].best_fitness, res.history[i - 1].best_fitness);
  }
}

TEST(Dpga, StallStopsEarly) {
  const Graph g = make_two_cliques(5);
  Rng rng(29);
  auto cfg = small_dpga(2, 2, 5000);
  cfg.ga.stall_generations = 20;
  auto init = make_random_population(g.num_vertices(), 2,
                                     cfg.ga.population_size, rng);
  const auto res = run_dpga(g, cfg, std::move(init), rng.split());
  EXPECT_LT(res.generations, 1000);
}

TEST(Dpga, ValidatesConfig) {
  const Graph g = make_grid(4, 4);
  Rng rng(31);
  auto init = make_random_population(16, 2, 8, rng);
  DpgaConfig bad = small_dpga(2, 4, 10);
  bad.ga.population_size = 4;  // 4 islands need >= 8
  EXPECT_THROW(run_dpga(g, bad, init, rng.split()), Error);
  bad = small_dpga(2, 4, 10);
  bad.migration_interval = 0;
  EXPECT_THROW(run_dpga(g, bad, init, rng.split()), Error);
}

TEST(Dpga, SingleIslandDegeneratesToPlainGa) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(37);
  auto cfg = small_dpga(2, 1, 20);
  cfg.topology = TopologyKind::kIsolated;
  auto init = make_random_population(78, 2, cfg.ga.population_size, rng);
  const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
  EXPECT_EQ(res.island_best_fitness.size(), 1u);
  EXPECT_EQ(res.generations, 20);
}

}  // namespace
}  // namespace gapart
