#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "baselines/greedy_incremental.hpp"
#include "baselines/kl.hpp"
#include "baselines/rcb.hpp"
#include "baselines/rgb.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::all_parts_used;
using testing::max_size_deviation;

TEST(Rcb, GridQuadrants) {
  const Graph g = make_grid(8, 8);
  Rng rng(3);
  const auto a = rcb_partition(g, 4, rng);
  ASSERT_TRUE(is_valid_assignment(g, a, 4));
  const auto m = compute_metrics(g, a, 4);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
  // Coordinate bisection of a square grid into 4 = two straight cuts.
  EXPECT_LE(m.total_cut(), 16.0);
}

TEST(Rcb, BalancedOnPaperMeshes) {
  for (VertexId n : {78, 144, 243}) {
    const Mesh mesh = paper_mesh(n);
    Rng rng(5);
    for (PartId k : {2, 4, 8}) {
      const auto a = rcb_partition(mesh.graph, k, rng);
      ASSERT_TRUE(is_valid_assignment(mesh.graph, a, k));
      EXPECT_TRUE(all_parts_used(a, k)) << n << "/" << k;
      EXPECT_LE(max_size_deviation(a, k), 2) << n << "/" << k;
    }
  }
}

TEST(Rcb, RequiresCoordinates) {
  const Graph g = make_complete(6);
  Rng rng(7);
  EXPECT_THROW(rcb_partition(g, 2, rng), Error);
}

TEST(Rcb, SplitsWidestAxis) {
  // 2x20 strip: the x axis is widest, so a bisection should cut the strip
  // crosswise (2 edges), not lengthwise (20 edges).
  const Graph g = make_grid(2, 20);
  Rng rng(9);
  const auto a = rcb_partition(g, 2, rng);
  EXPECT_LE(compute_metrics(g, a, 2).total_cut(), 2.0);
}

TEST(Rgb, PathOptimal) {
  const Graph g = make_path(30);
  Rng rng(11);
  const auto a = rgb_partition(g, 2, rng);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(Rgb, NeedsNoCoordinates) {
  const Graph g = make_clique_chain(4, 6);
  Rng rng(13);
  const auto a = rgb_partition(g, 4, rng);
  ASSERT_TRUE(is_valid_assignment(g, a, 4));
  const auto m = compute_metrics(g, a, 4);
  // BFS levelization should cut near the 3 clique joints.
  EXPECT_LE(m.total_cut(), 6.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(Rgb, BalancedOnPaperMeshes) {
  const Mesh mesh = paper_mesh(183);
  Rng rng(17);
  for (PartId k : {2, 4, 8}) {
    const auto a = rgb_partition(mesh.graph, k, rng);
    ASSERT_TRUE(is_valid_assignment(mesh.graph, a, k));
    EXPECT_LE(max_size_deviation(a, k), 2);
  }
}

TEST(Kl, ImprovesBadBisection) {
  const Graph g = make_grid(8, 8);
  // Interleaved columns: terrible cut, perfectly balanced.
  Assignment a(64);
  for (VertexId v = 0; v < 64; ++v) {
    a[static_cast<std::size_t>(v)] = static_cast<PartId>((v % 8) % 2);
  }
  PartitionState state(g, a, 2);
  const double before = state.fitness({Objective::kTotalComm, 1.0});
  const auto res = kl_refine(state);
  const double after = state.fitness({Objective::kTotalComm, 1.0});
  EXPECT_GT(res.moves_applied, 0);
  EXPECT_GT(after, before);
  EXPECT_NEAR(after - before, res.fitness_gain, 1e-9);
  // Interleaving cuts 56 edges; KL should at least halve that.
  EXPECT_LE(state.total_cut(), 28.0);
}

TEST(Kl, NeverWorsens) {
  Rng rng(19);
  const Mesh mesh = paper_mesh(98);
  for (int trial = 0; trial < 5; ++trial) {
    Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
    for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
    for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
      PartitionState state(mesh.graph, a, 4);
      KlOptions opt;
      opt.fitness = {obj, 1.0};
      const double before = state.fitness(opt.fitness);
      kl_refine(state, opt);
      EXPECT_GE(state.fitness(opt.fitness), before - 1e-9);
    }
  }
}

TEST(Kl, FixedPointOnOptimalSolution) {
  const Graph g = make_two_cliques(6);
  Assignment a(12, 0);
  for (std::size_t i = 6; i < 12; ++i) a[i] = 1;
  PartitionState state(g, a, 2);
  const auto res = kl_refine(state);
  EXPECT_EQ(res.moves_applied, 0);
  EXPECT_DOUBLE_EQ(state.total_cut(), 1.0);
}

TEST(Kl, EscapesLocalOptimumViaNegativeMoves) {
  // Two cliques with the WRONG bisection (half of each clique on each
  // side): strictly-improving hill climbing cannot fix a clique split
  // without passing through worse states; KL's trial sequence can.
  const Graph g = make_two_cliques(4);
  const Assignment a = {0, 0, 1, 1, 0, 0, 1, 1};
  PartitionState state(g, a, 2);
  kl_refine(state);
  EXPECT_LE(state.total_cut(), 1.0);
}

TEST(Kl, MovesCapRespected) {
  const Graph g = make_grid(6, 6);
  Assignment a(36);
  for (VertexId v = 0; v < 36; ++v) {
    a[static_cast<std::size_t>(v)] = static_cast<PartId>(v % 2);
  }
  PartitionState state(g, a, 2);
  KlOptions opt;
  opt.max_passes = 1;
  opt.max_moves_per_pass = 3;
  const auto res = kl_refine(state, opt);
  EXPECT_LE(res.moves_applied, 3);
}

TEST(GreedyIncremental, MajorityRule) {
  // Path 0-1-2-3 partitioned {0,0,1,1}; new vertex 4 adjacent to 2 and 3
  // must join part 1.
  GraphBuilder b(5);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(2, 4);
  b.add_edge(3, 4);
  const Graph g = b.build();
  const auto out = greedy_incremental_assign(g, {0, 0, 1, 1}, 2);
  EXPECT_EQ(out[4], 1);
  // Old vertices untouched.
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[3], 1);
}

TEST(GreedyIncremental, TieBrokenByLighterPart) {
  // New vertex with one neighbour in each part joins the lighter part.
  GraphBuilder b(6);
  b.add_edge(0, 5);
  b.add_edge(3, 5);
  const Graph g = b.build();
  // Parts: {0,1,2} in part 0 (weight 3), {3,4} in part 1 (weight 2).
  const auto out = greedy_incremental_assign(g, {0, 0, 0, 1, 1}, 2);
  EXPECT_EQ(out[5], 1);
}

TEST(GreedyIncremental, IsolatedNewVertexGoesToLightestPart) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto out = greedy_incremental_assign(g, {0, 0, 1}, 2);
  EXPECT_EQ(out[3], 1);
}

TEST(GreedyIncremental, ChainOfNewVerticesPropagates) {
  // New vertices 3-4-5 hang off vertex 2 (part 1) as a path; the
  // most-constrained-first order assigns them all to part 1 (modulo the
  // balance tie-break on the last).
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const Graph g = b.build();
  const auto out = greedy_incremental_assign(g, {0, 0, 1}, 2);
  EXPECT_EQ(out[3], 1);
  EXPECT_EQ(out[4], 1);
}

TEST(GreedyIncremental, ValidatesInputs) {
  const Graph g = make_path(3);
  EXPECT_THROW(greedy_incremental_assign(g, {0, 0, 0, 0}, 2), Error);
  EXPECT_THROW(greedy_incremental_assign(g, {0, 7}, 2), Error);
}

/// Reference most-constrained-first extension, kept verbatim from the
/// pre-optimization implementation: order-preserving erase() keeps `pending`
/// ascending, so "first max in scan order" is the lowest-id max-count
/// vertex.  The production code's lazy bucket queue (min-id heap per count)
/// must pick the same vertex every round — golden-tested here.
Assignment reference_greedy_incremental(const Graph& grown,
                                        const Assignment& previous,
                                        PartId num_parts) {
  const VertexId n = grown.num_vertices();
  const auto n_old = static_cast<VertexId>(previous.size());
  Assignment out(static_cast<std::size_t>(n), -1);
  std::copy(previous.begin(), previous.end(), out.begin());
  std::vector<double> part_weight(static_cast<std::size_t>(num_parts), 0.0);
  for (VertexId v = 0; v < n_old; ++v) {
    part_weight[static_cast<std::size_t>(out[static_cast<std::size_t>(v)])] +=
        grown.vertex_weight(v);
  }
  std::vector<VertexId> pending;
  for (VertexId v = n_old; v < n; ++v) pending.push_back(v);
  while (!pending.empty()) {
    std::size_t pick = 0;
    std::int32_t pick_count = -1;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      std::int32_t c = 0;
      for (VertexId u : grown.neighbors(pending[i])) {
        c += out[static_cast<std::size_t>(u)] >= 0;
      }
      if (c > pick_count) {
        pick_count = c;
        pick = i;
      }
    }
    const VertexId v = pending[pick];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    std::vector<double> votes(static_cast<std::size_t>(num_parts), 0.0);
    const auto nbrs = grown.neighbors(v);
    const auto wgts = grown.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const PartId p = out[static_cast<std::size_t>(nbrs[i])];
      if (p >= 0) votes[static_cast<std::size_t>(p)] += wgts[i];
    }
    PartId choice = 0;
    for (PartId q = 1; q < num_parts; ++q) {
      const auto uq = static_cast<std::size_t>(q);
      const auto uc = static_cast<std::size_t>(choice);
      if (votes[uq] > votes[uc] ||
          (votes[uq] == votes[uc] && part_weight[uq] < part_weight[uc])) {
        choice = q;
      }
    }
    out[static_cast<std::size_t>(v)] = choice;
    part_weight[static_cast<std::size_t>(choice)] += grown.vertex_weight(v);
  }
  return out;
}

TEST(GreedyIncremental, BucketQueuePickMatchesReferenceGolden) {
  // Paper incremental workloads, several part counts.
  for (const auto& [base_n, extra] :
       {std::pair<VertexId, VertexId>{118, 41}, {183, 60}, {78, 10}}) {
    const Mesh base = paper_mesh(base_n);
    const Mesh grown = paper_incremental_mesh(base, base_n, extra);
    for (const PartId k : {2, 4, 8}) {
      Rng rng(static_cast<std::uint64_t>(base_n) * 31 +
              static_cast<std::uint64_t>(k));
      const auto prev = rgb_partition(base.graph, k, rng);
      EXPECT_EQ(greedy_incremental_assign(grown.graph, prev, k),
                reference_greedy_incremental(grown.graph, prev, k))
          << "base=" << base_n << "+" << extra << " k=" << k;
    }
  }
  // Fuzzed random weighted graphs with many tied most-constrained counts.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed + 1000);
    const VertexId n = 60;
    const VertexId n_old = 30;
    GraphBuilder b(n);
    for (VertexId v = 0; v < n; ++v) {
      b.set_vertex_weight(v, 1.0 + rng.uniform_int(3));
    }
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.bernoulli(0.08)) b.add_edge(u, v, 1.0 + rng.uniform_int(4));
      }
    }
    const Graph g = b.build();
    Assignment prev(static_cast<std::size_t>(n_old));
    for (auto& p : prev) p = static_cast<PartId>(rng.uniform_int(3));
    EXPECT_EQ(greedy_incremental_assign(g, prev, 3),
              reference_greedy_incremental(g, prev, 3))
        << "fuzz seed " << seed;
  }
}

TEST(GreedyIncremental, LocalizedGrowthUnbalancesGreedy) {
  // The paper's conclusion argues the deterministic majority rule is a weak
  // incremental partitioner: when growth is localized, all new vertices pile
  // onto the part(s) owning that region.  Document exactly that: the greedy
  // result is valid and preserves old assignments, but its imbalance is far
  // worse than balanced dealing achieves (deviation <= 1).
  const Mesh base = paper_mesh(118);
  const Mesh grown = paper_incremental_mesh(base, 118, 41);
  Rng rng(23);
  const auto prev = rgb_partition(base.graph, 8, rng);
  const auto out = greedy_incremental_assign(grown.graph, prev, 8);
  ASSERT_TRUE(is_valid_assignment(grown.graph, out, 8));
  for (std::size_t v = 0; v < prev.size(); ++v) {
    ASSERT_EQ(out[v], prev[v]) << "old vertex " << v << " reassigned";
  }
  EXPECT_GE(max_size_deviation(out, 8), 4);  // the strawman's weakness
}

}  // namespace
}  // namespace gapart
