#include "common/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace gapart {
namespace {

TEST(Executor, ParallelForVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    Executor pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(n, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(Executor, ParallelForHandlesEmptyAndTinyRanges) {
  Executor pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 1);
  pool.parallel_for(3, [&](std::size_t) { ++count; }, /*grain=*/100);
  EXPECT_EQ(count.load(), 4);
}

TEST(Executor, ParallelForPropagatesExceptions) {
  Executor pool(4);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(Executor, NestedParallelForCompletes) {
  Executor pool(3);
  std::atomic<int> total{0};
  // Outer tasks issue inner loops on the same pool; caller participation
  // guarantees progress even with every worker busy.
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(Executor, BlockedParallelForCoversDisjointRanges) {
  for (int threads : {1, 2, 4, 8}) {
    Executor pool(threads);
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> visits(n);
    pool.parallel_for(n, /*grain=*/7,
                      [&](std::size_t begin, std::size_t end) {
                        ASSERT_LT(begin, end);
                        ASSERT_LE(end, n);
                        for (std::size_t i = begin; i < end; ++i) ++visits[i];
                      });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(Executor, BlockedParallelForRespectsGrainBound) {
  Executor pool(4);
  std::atomic<std::size_t> max_span{0};
  pool.parallel_for(100, /*grain=*/9,
                    [&](std::size_t begin, std::size_t end) {
                      std::size_t span = end - begin;
                      std::size_t seen = max_span.load();
                      while (span > seen &&
                             !max_span.compare_exchange_weak(seen, span)) {
                      }
                    });
  EXPECT_LE(max_span.load(), 9u);
}

TEST(Executor, BlockedParallelForEmptyAndSerialPool) {
  Executor serial(1);
  std::atomic<int> count{0};
  serial.parallel_for(0, 4, [&](std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  // A worker-less pool runs the whole range as one inline call.
  std::vector<std::pair<std::size_t, std::size_t>> calls;
  serial.parallel_for(10, 3, [&](std::size_t begin, std::size_t end) {
    calls.emplace_back(begin, end);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<std::size_t, std::size_t>{0, 10}));
}

TEST(Executor, BlockedParallelForPropagatesExceptions) {
  Executor pool(4);
  EXPECT_THROW(pool.parallel_for(100, 5,
                                 [](std::size_t begin, std::size_t) {
                                   if (begin >= 50)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    count += static_cast<int>(e - b);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(Executor, RunTasksRunsEachClosureOnce) {
  Executor pool(4);
  std::vector<std::atomic<int>> ran(10);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&ran, i] { ++ran[static_cast<std::size_t>(i)]; });
  }
  pool.run_tasks(tasks);
  for (auto& r : ran) EXPECT_EQ(r.load(), 1);
}

TEST(Executor, SubmitAndWaitDrains) {
  Executor pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 50);
  // wait() with an empty queue returns immediately.
  pool.wait();
}

TEST(Executor, SingleThreadPoolRunsInline) {
  Executor pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Executor, HardwareThreadsPositive) {
  EXPECT_GE(Executor::hardware_threads(), 1);
}

TEST(Executor, PendingGaugeTracksSubmittedWork) {
  Executor pool(1);  // no workers: submitted tasks sit queued until wait()
  EXPECT_EQ(pool.pending(), 0);
  int ran = 0;
  pool.submit([&ran] { ++ran; });
  pool.submit([&ran] { ++ran; });
  EXPECT_EQ(pool.pending(), 2);
  pool.wait();
  EXPECT_EQ(pool.pending(), 0);
  EXPECT_EQ(ran, 2);
}

TEST(RngFork, PureFunctionOfStateAndStream) {
  Rng rng(42);
  rng.next_u64();  // move off the seed state
  Rng a = rng.fork(7);
  Rng b = rng.fork(7);
  EXPECT_EQ(a.next_u64(), b.next_u64());  // same stream -> same sequence
  // fork() must not advance the parent: the parent's next draw is unchanged.
  Rng witness(42);
  witness.next_u64();
  EXPECT_EQ(rng.next_u64(), witness.next_u64());
}

TEST(RngFork, DistinctStreamsDecorrelated) {
  Rng rng(42);
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t s = 0; s < 64; ++s) {
    firsts.push_back(rng.fork(s).next_u64());
  }
  // All first draws distinct (a collision here would be a 1-in-2^58 fluke).
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

TEST(RngFork, IndependentOfCallOrder) {
  Rng a(9);
  Rng b(9);
  const std::uint64_t a3 = a.fork(3).next_u64();
  const std::uint64_t a5 = a.fork(5).next_u64();
  const std::uint64_t b5 = b.fork(5).next_u64();
  const std::uint64_t b3 = b.fork(3).next_u64();
  EXPECT_EQ(a3, b3);
  EXPECT_EQ(a5, b5);
}

}  // namespace
}  // namespace gapart
