#include "sfc/indexing.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/assert.hpp"

namespace gapart {
namespace {

TEST(Interleave, PaperExampleEqualWidths) {
  // Appendix: index1 = 001, index2 = 010, index3 = 110 -> 001011100.
  const std::uint64_t idx[3] = {0b001, 0b010, 0b110};
  const int bits[3] = {3, 3, 3};
  EXPECT_EQ(interleave_bits(idx, bits), 0b001011100u);
}

TEST(Interleave, PaperExampleUnequalWidths) {
  // Appendix: index1 = 101, index2 = 01, index3 = 0 -> 100110.
  const std::uint64_t idx[3] = {0b101, 0b01, 0b0};
  const int bits[3] = {3, 2, 1};
  EXPECT_EQ(interleave_bits(idx, bits), 0b100110u);
}

TEST(Interleave, SingleDimensionIsIdentity) {
  const std::uint64_t idx[1] = {0b1011};
  const int bits[1] = {4};
  EXPECT_EQ(interleave_bits(idx, bits), 0b1011u);
}

TEST(Interleave, ZeroWidthDimensionSkipped) {
  const std::uint64_t idx[2] = {0b11, 0};
  const int bits[2] = {2, 0};
  EXPECT_EQ(interleave_bits(idx, bits), 0b11u);
}

TEST(Interleave, IndexExceedingWidthRejected) {
  const std::uint64_t idx[2] = {0b100, 0b1};
  const int bits[2] = {2, 1};
  EXPECT_THROW(interleave_bits(idx, bits), Error);
}

TEST(Interleave, BijectiveOnSmallGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      const std::uint64_t idx[2] = {a, b};
      const int bits[2] = {3, 2};
      seen.insert(interleave_bits(idx, bits));
    }
  }
  EXPECT_EQ(seen.size(), 32u);
}

TEST(RowMajor, Figure1aGrid) {
  // Figure 1(a): row-major indexing of the 8x8 grid, row r col c -> 8r + c.
  EXPECT_EQ(row_major_index(0, 0, 8), 0u);
  EXPECT_EQ(row_major_index(0, 7, 8), 7u);
  EXPECT_EQ(row_major_index(1, 0, 8), 8u);
  EXPECT_EQ(row_major_index(3, 5, 8), 29u);
  EXPECT_EQ(row_major_index(7, 7, 8), 63u);
}

TEST(RowMajor, ColumnOutOfRangeRejected) {
  EXPECT_THROW(row_major_index(0, 8, 8), Error);
}

TEST(Morton, Figure1bGrid) {
  // Figure 1(b): shuffled row-major indexing of the 8x8 grid.  The full
  // expected matrix is transcribed from the paper.
  const std::uint64_t expected[8][8] = {
      {0, 1, 4, 5, 16, 17, 20, 21},
      {2, 3, 6, 7, 18, 19, 22, 23},
      {8, 9, 12, 13, 24, 25, 28, 29},
      {10, 11, 14, 15, 26, 27, 30, 31},
      {32, 33, 36, 37, 48, 49, 52, 53},
      {34, 35, 38, 39, 50, 51, 54, 55},
      {40, 41, 44, 45, 56, 57, 60, 61},
      {42, 43, 46, 47, 58, 59, 62, 63},
  };
  for (std::uint64_t r = 0; r < 8; ++r) {
    for (std::uint64_t c = 0; c < 8; ++c) {
      EXPECT_EQ(morton_index(r, c, 3), expected[r][c])
          << "cell (" << r << "," << c << ")";
    }
  }
}

TEST(Morton, BijectiveAndMonotoneInBlocks) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t r = 0; r < 16; ++r) {
    for (std::uint64_t c = 0; c < 16; ++c) {
      seen.insert(morton_index(r, c, 4));
    }
  }
  EXPECT_EQ(seen.size(), 256u);
  // 2x2 blocks are contiguous index runs.
  for (std::uint64_t r = 0; r < 16; r += 2) {
    for (std::uint64_t c = 0; c < 16; c += 2) {
      const auto base = morton_index(r, c, 4);
      EXPECT_EQ(morton_index(r, c + 1, 4), base + 1);
      EXPECT_EQ(morton_index(r + 1, c, 4), base + 2);
      EXPECT_EQ(morton_index(r + 1, c + 1, 4), base + 3);
    }
  }
}

TEST(Hilbert, FirstOrderCurve) {
  // Order-1 Hilbert curve visits (0,0),(0,1),(1,1),(1,0).
  EXPECT_EQ(hilbert_index(0, 0, 1), 0u);
  EXPECT_EQ(hilbert_index(0, 1, 1), 1u);
  EXPECT_EQ(hilbert_index(1, 1, 1), 2u);
  EXPECT_EQ(hilbert_index(1, 0, 1), 3u);
}

TEST(Hilbert, BijectiveOnGrid) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 16; ++x) {
    for (std::uint64_t y = 0; y < 16; ++y) {
      seen.insert(hilbert_index(x, y, 4));
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Hilbert, ConsecutiveIndicesAreGridNeighbors) {
  // The defining locality property: successive curve positions are adjacent
  // cells (Manhattan distance exactly 1).  Morton does NOT have this.
  const int order = 4;
  const std::uint64_t n = 16;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> by_index(n * n);
  for (std::uint64_t x = 0; x < n; ++x) {
    for (std::uint64_t y = 0; y < n; ++y) {
      by_index[hilbert_index(x, y, order)] = {x, y};
    }
  }
  for (std::size_t i = 0; i + 1 < by_index.size(); ++i) {
    const auto [x1, y1] = by_index[i];
    const auto [x2, y2] = by_index[i + 1];
    const auto dx = x1 > x2 ? x1 - x2 : x2 - x1;
    const auto dy = y1 > y2 ? y1 - y2 : y2 - y1;
    EXPECT_EQ(dx + dy, 1u) << "positions " << i << " and " << i + 1;
  }
}

TEST(Hilbert, OutOfGridRejected) {
  EXPECT_THROW(hilbert_index(2, 0, 1), Error);
}

TEST(Quantize, MapsToFullRange) {
  const std::vector<Point2> pts = {{0.0, 0.0}, {1.0, 2.0}, {0.5, 1.0}};
  const auto q = quantize_points(pts, 4);
  EXPECT_EQ(q.x[0], 0u);
  EXPECT_EQ(q.y[0], 0u);
  EXPECT_EQ(q.x[1], 15u);
  EXPECT_EQ(q.y[1], 15u);
  EXPECT_EQ(q.x[2], 8u);
  EXPECT_EQ(q.y[2], 8u);
}

TEST(Quantize, DegenerateAxisMapsToZero) {
  const std::vector<Point2> pts = {{0.0, 3.0}, {1.0, 3.0}};
  const auto q = quantize_points(pts, 3);
  EXPECT_EQ(q.y[0], 0u);
  EXPECT_EQ(q.y[1], 0u);
  EXPECT_EQ(q.x[1], 7u);
}

TEST(Quantize, PreservesOrdering) {
  const std::vector<Point2> pts = {{0.1, 0.0}, {0.4, 0.0}, {0.9, 0.0}};
  const auto q = quantize_points(pts, 8);
  EXPECT_LT(q.x[0], q.x[1]);
  EXPECT_LT(q.x[1], q.x[2]);
}

}  // namespace
}  // namespace gapart
