#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::brute_force_metrics;
using testing::expect_metrics_near;

TEST(PartitionState, InitialMetricsMatchComputeMetrics) {
  const Graph g = make_grid(4, 5);
  const Assignment a = {0, 0, 0, 1, 1, 0, 0, 0, 1, 1,
                        2, 2, 3, 3, 3, 2, 2, 3, 3, 3};
  PartitionState state(g, a, 4);
  expect_metrics_near(state.metrics(), compute_metrics(g, a, 4));
}

TEST(PartitionState, SingleMoveUpdatesEverything) {
  const Graph g = make_path(6);
  PartitionState state(g, {0, 0, 0, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(state.total_cut(), 1.0);
  state.move(3, 0);
  EXPECT_EQ(state.part_of(3), 0);
  EXPECT_DOUBLE_EQ(state.total_cut(), 1.0);  // cut moved to edge (3,4)
  EXPECT_DOUBLE_EQ(state.part_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(state.part_weight(1), 2.0);
  EXPECT_DOUBLE_EQ(state.imbalance_sq(), 2.0);  // (4-3)^2 + (2-3)^2
  expect_metrics_near(state.metrics(),
                      compute_metrics(g, state.assignment(), 2));
}

TEST(PartitionState, MoveToSamePartIsNoOp) {
  const Graph g = make_cycle(5);
  PartitionState state(g, {0, 0, 1, 1, 1}, 2);
  const auto before = state.metrics();
  state.move(0, 0);
  expect_metrics_near(state.metrics(), before);
}

TEST(PartitionState, BoundaryDetection) {
  const Graph g = make_path(5);
  PartitionState state(g, {0, 0, 1, 1, 1}, 2);
  EXPECT_FALSE(state.is_boundary(0));
  EXPECT_TRUE(state.is_boundary(1));
  EXPECT_TRUE(state.is_boundary(2));
  EXPECT_FALSE(state.is_boundary(3));
  EXPECT_FALSE(state.is_boundary(4));
  const auto boundary = state.boundary_vertices();
  ASSERT_EQ(boundary.size(), 2u);
  EXPECT_EQ(boundary[0], 1);
  EXPECT_EQ(boundary[1], 2);
}

TEST(PartitionState, NeighborPartsDeduplicated) {
  const Graph g = make_star(5);
  PartitionState state(g, {0, 1, 1, 2, 0}, 3);
  const auto np = state.neighbor_parts(0);
  ASSERT_EQ(np.size(), 2u);
  EXPECT_EQ(np[0], 1);
  EXPECT_EQ(np[1], 2);
}

TEST(PartitionState, MoveGainMatchesActualMove) {
  const Graph g = make_grid(3, 3);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Assignment a(9);
    for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(3));
    PartitionState state(g, a, 3);
    const auto v = static_cast<VertexId>(rng.uniform_int(9));
    const auto to = static_cast<PartId>(rng.uniform_int(3));
    for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
      const FitnessParams params{obj, 1.0};
      const double before = state.fitness(params);
      const double predicted = state.move_gain(v, to, params);
      PartitionState applied = state;
      applied.move(v, to);
      EXPECT_NEAR(applied.fitness(params) - before, predicted, 1e-9)
          << "trial " << trial << " objective "
          << objective_name(obj);
    }
  }
}

TEST(PartitionState, FitnessMatchesFreeFunction) {
  const Graph g = make_two_cliques(4);
  const Assignment a = {0, 0, 0, 0, 1, 1, 1, 1};
  PartitionState state(g, a, 2);
  for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
    const FitnessParams params{obj, 1.0};
    EXPECT_DOUBLE_EQ(state.fitness(params),
                     evaluate_fitness(g, a, 2, params));
  }
}

TEST(PartitionState, InvalidConstructionThrows) {
  const Graph g = make_path(3);
  EXPECT_THROW(PartitionState(g, {0, 1}, 2), Error);
  EXPECT_THROW(PartitionState(g, {0, 5, 0}, 2), Error);
}

// Fuzz: long random move sequences must keep incremental state identical to
// from-scratch recomputation, across graph families and part counts.
class PartitionStateFuzz
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionStateFuzz, RandomMoveSequences) {
  const auto [graph_kind, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_kind * 100 + k));
  Graph g;
  switch (graph_kind) {
    case 0:
      g = make_grid(6, 6);
      break;
    case 1:
      g = make_random_graph(40, 0.15, rng);
      break;
    case 2:
      g = make_connected_geometric(50, 0.2, rng);
      break;
    default:
      g = make_clique_chain(4, 5);
      break;
  }
  const VertexId n = g.num_vertices();
  Assignment a(static_cast<std::size_t>(n));
  for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(k));
  PartitionState state(g, a, static_cast<PartId>(k));

  for (int mv = 0; mv < 300; ++mv) {
    const auto v = static_cast<VertexId>(rng.uniform_int(n));
    const auto to = static_cast<PartId>(rng.uniform_int(k));
    state.move(v, to);
    if (mv % 25 == 0) {
      expect_metrics_near(
          state.metrics(),
          brute_force_metrics(g, state.assignment(), static_cast<PartId>(k)));
    }
  }
  expect_metrics_near(
      state.metrics(),
      brute_force_metrics(g, state.assignment(), static_cast<PartId>(k)));
}

INSTANTIATE_TEST_SUITE_P(Fuzz, PartitionStateFuzz,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(2, 4, 7)));

}  // namespace
}  // namespace gapart
