#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/graph_delta.hpp"
#include "graph/connectivity_scratch.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::brute_force_metrics;
using testing::expect_metrics_near;

/// Boundary predicate recomputed from scratch (mirrors the definition, not
/// the maintained flags).
bool brute_is_boundary(const Graph& g, const Assignment& a, VertexId v) {
  const PartId p = a[static_cast<std::size_t>(v)];
  for (VertexId u : g.neighbors(v)) {
    if (a[static_cast<std::size_t>(u)] != p) return true;
  }
  return false;
}

std::vector<VertexId> brute_boundary(const Graph& g, const Assignment& a) {
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (brute_is_boundary(g, a, v)) out.push_back(v);
  }
  return out;
}

Graph fuzz_graph(int graph_kind, Rng& rng) {
  switch (graph_kind) {
    case 0:
      return make_grid(6, 6);
    case 1:
      return make_random_graph(40, 0.15, rng);
    case 2:
      return make_connected_geometric(50, 0.2, rng);
    default:
      return make_clique_chain(4, 5);
  }
}

TEST(PartitionState, InitialMetricsMatchComputeMetrics) {
  const Graph g = make_grid(4, 5);
  const Assignment a = {0, 0, 0, 1, 1, 0, 0, 0, 1, 1,
                        2, 2, 3, 3, 3, 2, 2, 3, 3, 3};
  PartitionState state(g, a, 4);
  expect_metrics_near(state.metrics(), compute_metrics(g, a, 4));
}

TEST(PartitionState, SingleMoveUpdatesEverything) {
  const Graph g = make_path(6);
  PartitionState state(g, {0, 0, 0, 1, 1, 1}, 2);
  EXPECT_DOUBLE_EQ(state.total_cut(), 1.0);
  state.move(3, 0);
  EXPECT_EQ(state.part_of(3), 0);
  EXPECT_DOUBLE_EQ(state.total_cut(), 1.0);  // cut moved to edge (3,4)
  EXPECT_DOUBLE_EQ(state.part_weight(0), 4.0);
  EXPECT_DOUBLE_EQ(state.part_weight(1), 2.0);
  EXPECT_DOUBLE_EQ(state.imbalance_sq(), 2.0);  // (4-3)^2 + (2-3)^2
  expect_metrics_near(state.metrics(),
                      compute_metrics(g, state.assignment(), 2));
}

TEST(PartitionState, MoveToSamePartIsNoOp) {
  const Graph g = make_cycle(5);
  PartitionState state(g, {0, 0, 1, 1, 1}, 2);
  const auto before = state.metrics();
  state.move(0, 0);
  expect_metrics_near(state.metrics(), before);
}

TEST(PartitionState, BoundaryDetection) {
  const Graph g = make_path(5);
  PartitionState state(g, {0, 0, 1, 1, 1}, 2);
  EXPECT_FALSE(state.is_boundary(0));
  EXPECT_TRUE(state.is_boundary(1));
  EXPECT_TRUE(state.is_boundary(2));
  EXPECT_FALSE(state.is_boundary(3));
  EXPECT_FALSE(state.is_boundary(4));
  const auto boundary = state.boundary_vertices();
  ASSERT_EQ(boundary.size(), 2u);
  EXPECT_EQ(boundary[0], 1);
  EXPECT_EQ(boundary[1], 2);
}

TEST(PartitionState, NeighborPartsDeduplicated) {
  const Graph g = make_star(5);
  PartitionState state(g, {0, 1, 1, 2, 0}, 3);
  const auto np = state.neighbor_parts(0);
  ASSERT_EQ(np.size(), 2u);
  EXPECT_EQ(np[0], 1);
  EXPECT_EQ(np[1], 2);
}

TEST(PartitionState, MoveGainMatchesActualMove) {
  const Graph g = make_grid(3, 3);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    Assignment a(9);
    for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(3));
    PartitionState state(g, a, 3);
    const auto v = static_cast<VertexId>(rng.uniform_int(9));
    const auto to = static_cast<PartId>(rng.uniform_int(3));
    for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
      const FitnessParams params{obj, 1.0};
      const double before = state.fitness(params);
      const double predicted = state.move_gain(v, to, params);
      PartitionState applied = state;
      applied.move(v, to);
      EXPECT_NEAR(applied.fitness(params) - before, predicted, 1e-9)
          << "trial " << trial << " objective "
          << objective_name(obj);
    }
  }
}

TEST(PartitionState, FitnessMatchesFreeFunction) {
  const Graph g = make_two_cliques(4);
  const Assignment a = {0, 0, 0, 0, 1, 1, 1, 1};
  PartitionState state(g, a, 2);
  for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
    const FitnessParams params{obj, 1.0};
    EXPECT_DOUBLE_EQ(state.fitness(params),
                     evaluate_fitness(g, a, 2, params));
  }
}

TEST(PartitionState, InvalidConstructionThrows) {
  const Graph g = make_path(3);
  EXPECT_THROW(PartitionState(g, {0, 1}, 2), Error);
  EXPECT_THROW(PartitionState(g, {0, 5, 0}, 2), Error);
}

// Fuzz: long random move sequences must keep incremental state identical to
// from-scratch recomputation, across graph families and part counts.
class PartitionStateFuzz
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionStateFuzz, RandomMoveSequences) {
  const auto [graph_kind, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_kind * 100 + k));
  Graph g;
  switch (graph_kind) {
    case 0:
      g = make_grid(6, 6);
      break;
    case 1:
      g = make_random_graph(40, 0.15, rng);
      break;
    case 2:
      g = make_connected_geometric(50, 0.2, rng);
      break;
    default:
      g = make_clique_chain(4, 5);
      break;
  }
  const VertexId n = g.num_vertices();
  Assignment a(static_cast<std::size_t>(n));
  for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(k));
  PartitionState state(g, a, static_cast<PartId>(k));

  for (int mv = 0; mv < 300; ++mv) {
    const auto v = static_cast<VertexId>(rng.uniform_int(n));
    const auto to = static_cast<PartId>(rng.uniform_int(k));
    state.move(v, to);
    if (mv % 25 == 0) {
      expect_metrics_near(
          state.metrics(),
          brute_force_metrics(g, state.assignment(), static_cast<PartId>(k)));
    }
  }
  expect_metrics_near(
      state.metrics(),
      brute_force_metrics(g, state.assignment(), static_cast<PartId>(k)));
}

INSTANTIATE_TEST_SUITE_P(Fuzz, PartitionStateFuzz,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(2, 4, 7)));

// ---------------------------------------------------------------------------
// Incrementally maintained boundary: flags, frontier list, and external-
// degree bookkeeping must match a from-scratch recomputation after thousands
// of random moves, across graph families and part counts.
class BoundaryFuzz : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BoundaryFuzz, FrontierMatchesBruteForceAfterRandomMoves) {
  const auto [graph_kind, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(graph_kind * 1000 + k));
  const Graph g = fuzz_graph(graph_kind, rng);
  const VertexId n = g.num_vertices();
  Assignment a(static_cast<std::size_t>(n));
  for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(k));
  PartitionState state(g, a, static_cast<PartId>(k));

  for (int mv = 0; mv < 2000; ++mv) {
    const auto v = static_cast<VertexId>(rng.uniform_int(n));
    const auto to = static_cast<PartId>(rng.uniform_int(k));
    state.move(v, to);
    if (mv % 100 == 0 || mv >= 1995) {
      for (VertexId u = 0; u < n; ++u) {
        ASSERT_EQ(state.is_boundary(u),
                  brute_is_boundary(g, state.assignment(), u))
            << "vertex " << u << " after move " << mv;
      }
      const auto expected = brute_boundary(g, state.assignment());
      ASSERT_EQ(state.boundary_vertices(), expected) << "after move " << mv;
      ASSERT_EQ(state.boundary_size(),
                static_cast<VertexId>(expected.size()));
      // The raw frontier is the same set, unordered and duplicate-free.
      auto raw = state.frontier();
      std::sort(raw.begin(), raw.end());
      ASSERT_EQ(raw, expected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, BoundaryFuzz,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(2, 4, 7)));

// ---------------------------------------------------------------------------
// The single-scan gain kernel must agree with the legacy probe loop
// (neighbor_parts() + move_gain() per candidate, ties to the lowest part)
// bit-for-bit, and the connectivity it derives from must match a per-part
// brute-force accumulation.
TEST(PartitionStateKernel, BestMoveMatchesPerPartProbes) {
  Rng rng(0xbe57);
  for (const Objective objective :
       {Objective::kTotalComm, Objective::kWorstComm}) {
    for (const PartId k : {PartId{2}, PartId{4}, PartId{8}}) {
      const Graph g = make_random_graph(45, 0.15, rng);
      const VertexId n = g.num_vertices();
      Assignment a(static_cast<std::size_t>(n));
      for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(k));
      PartitionState state(g, a, k);
      FitnessParams params{objective, 1.0};

      for (int trial = 0; trial < 300; ++trial) {
        const auto v = static_cast<VertexId>(rng.uniform_int(n));
        for (const double min_gain :
             {1e-9, 0.0, -std::numeric_limits<double>::infinity()}) {
          PartId expect_to = -1;
          double expect_gain = min_gain;
          int candidates = 0;
          for (const PartId to : state.neighbor_parts(v)) {
            const double gain = state.move_gain(v, to, params);
            ++candidates;
            if (gain > expect_gain) {
              expect_gain = gain;
              expect_to = to;
            }
          }
          const BestMove got = state.best_move(v, params, min_gain);
          ASSERT_EQ(got.to, expect_to) << "v=" << v;
          ASSERT_EQ(got.candidates, candidates);
          if (expect_to >= 0) {
            ASSERT_EQ(got.gain, expect_gain) << "v=" << v;  // bitwise
          }
        }
        // Random walk to a fresh configuration.
        state.move(static_cast<VertexId>(rng.uniform_int(n)),
                   static_cast<PartId>(rng.uniform_int(k)));
      }
    }
  }
}

TEST(PartitionStateKernel, AppliedBestMoveRealizesItsGain) {
  Rng rng(0x9a1e);
  const Graph g = make_grid(8, 8);
  for (const Objective objective :
       {Objective::kTotalComm, Objective::kWorstComm}) {
    Assignment a(64);
    for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(5));
    PartitionState state(g, a, 5);
    const FitnessParams params{objective, 2.0};
    for (int trial = 0; trial < 200; ++trial) {
      const auto v = static_cast<VertexId>(rng.uniform_int(64));
      const BestMove best =
          state.best_move(v, params, -std::numeric_limits<double>::infinity());
      if (best.to < 0) continue;
      const double before = state.fitness(params);
      state.move(v, best.to);
      EXPECT_NEAR(state.fitness(params) - before, best.gain, 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Cached max-part cut: must equal a scan of the maintained per-part cuts
// (exactly) and the brute-force metrics (to tolerance) no matter how moves
// and kWorstComm fitness reads interleave.
TEST(PartitionStateMaxCut, CacheMatchesScanUnderRandomMoves) {
  Rng rng(0x3acc);
  for (const PartId k : {PartId{2}, PartId{5}, PartId{9}}) {
    const Graph g = make_connected_geometric(60, 0.2, rng);
    const VertexId n = g.num_vertices();
    Assignment a(static_cast<std::size_t>(n));
    for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(k));
    PartitionState state(g, a, k);
    const FitnessParams params{Objective::kWorstComm, 1.0};

    for (int mv = 0; mv < 1500; ++mv) {
      state.move(static_cast<VertexId>(rng.uniform_int(n)),
                 static_cast<PartId>(rng.uniform_int(k)));
      // Exercise both orders of cache use: sometimes read fitness (which
      // consults the cache) before the invariant check, sometimes not.
      if (mv % 3 == 0) state.fitness(params);
      double expect = 0.0;
      for (PartId q = 0; q < k; ++q) {
        expect = std::max(expect, state.part_cut(q));
      }
      ASSERT_DOUBLE_EQ(state.max_part_cut(), expect) << "after move " << mv;
      if (mv % 250 == 0) {
        const auto m = brute_force_metrics(g, state.assignment(), k);
        ASSERT_NEAR(state.max_part_cut(), m.max_part_cut, 1e-9);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ConnectivityScratch: epoch-stamped clearing and touched-slot tracking.
TEST(ConnectivityScratch, UsableBeforeFirstBegin) {
  // A fresh (or freshly resized) scratch must register touched slots even
  // when the caller forgets the initial begin().
  ConnectivityScratch s(3);
  s.add(1, 2.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  ASSERT_EQ(s.touched().size(), 1u);
  EXPECT_EQ(s.touched()[0], 1);
}

TEST(ConnectivityScratch, AccumulatesAndClearsByEpoch) {
  ConnectivityScratch s(4);
  s.begin();
  s.add(2, 1.5);
  s.add(0, 1.0);
  s.add(2, 0.5);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 2.0);
  ASSERT_EQ(s.touched().size(), 2u);
  EXPECT_EQ(s.touched()[0], 2);  // first-touch order
  EXPECT_EQ(s.touched()[1], 0);

  s.begin();  // logical clear, no allocation
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[2], 0.0);
  EXPECT_TRUE(s.touched().empty());
  s.add(3, 7.0);
  EXPECT_DOUBLE_EQ(s[3], 7.0);

  s.resize(2);
  s.begin();
  EXPECT_DOUBLE_EQ(s[0], 0.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
  EXPECT_EQ(s.size(), 2u);
}

// Per-part connectivity derived by the kernel (via neighbor_parts) matches a
// brute-force accumulation on weighted graphs too.
TEST(ConnectivityScratch, NeighborPartsMatchBruteForceOnWeightedGraph) {
  Rng rng(0xc0ed);
  GraphBuilder b(30);
  for (int e = 0; e < 90; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform_int(30));
    const auto v = static_cast<VertexId>(rng.uniform_int(30));
    if (u != v) b.add_edge(u, v, 0.25 + rng.uniform());
  }
  const Graph g = b.build();
  const PartId k = 4;
  Assignment a(30);
  for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(k));
  PartitionState state(g, a, k);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<PartId> expect;
    const PartId p = a[static_cast<std::size_t>(v)];
    for (VertexId u : g.neighbors(v)) {
      const PartId q = a[static_cast<std::size_t>(u)];
      if (q != p) expect.push_back(q);
    }
    std::sort(expect.begin(), expect.end());
    expect.erase(std::unique(expect.begin(), expect.end()), expect.end());
    EXPECT_EQ(state.neighbor_parts(v), expect) << "vertex " << v;
  }
}

// ---------------------------------------------------------------------------
// rebind_grown: the O(damage) graph-replacement path a long-lived session
// rides must leave the state indistinguishable from a fresh construction on
// the grown graph.

/// Grows `old_g` by `extra` vertices and randomly perturbs it: old-old edges
/// are dropped / reweighted near the damage window, new edges are wired into
/// it, and some vertex weights change.  Every change is picked up by
/// diff_graphs, which is exactly the contract rebind_grown relies on.
Graph grow_and_perturb(const Graph& old_g, VertexId extra, Rng& rng,
                       bool weighted) {
  const VertexId n_old = old_g.num_vertices();
  const VertexId n_new = n_old + extra;
  GraphBuilder b(n_new);
  for (VertexId u = 0; u < n_old; ++u) {
    const auto nbrs = old_g.neighbors(u);
    const auto wgts = old_g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= u) continue;
      if (rng.bernoulli(0.05)) continue;  // drop edge
      double w = wgts[i];
      if (weighted && rng.bernoulli(0.1)) w = 1.0 + rng.uniform_int(5);
      b.add_edge(u, nbrs[i], w);
    }
    if (weighted) {
      b.set_vertex_weight(u, old_g.vertex_weight(u));
    }
  }
  // Rewire: a few brand-new old-old edges, plus edges stitching every new
  // vertex into the graph (to old and new endpoints alike).
  for (int e = 0; e < 6; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform_int(n_old));
    const auto v = static_cast<VertexId>(rng.uniform_int(n_old));
    if (u != v && !old_g.has_edge(u, v)) {
      b.add_edge(u, v, weighted ? 1.0 + rng.uniform_int(5) : 1.0);
    }
  }
  for (VertexId v = n_old; v < n_new; ++v) {
    const int fan = 1 + rng.uniform_int(3);
    for (int e = 0; e < fan; ++e) {
      const auto u = static_cast<VertexId>(rng.uniform_int(v));
      if (u != v) b.add_edge(u, v, weighted ? 1.0 + rng.uniform_int(5) : 1.0);
    }
  }
  if (weighted) {
    for (int c = 0; c < 4; ++c) {
      b.set_vertex_weight(static_cast<VertexId>(rng.uniform_int(n_new)),
                          1.0 + rng.uniform_int(3));
    }
  }
  return b.build();
}

void expect_state_matches_fresh(const PartitionState& state,
                                const Graph& grown, PartId k) {
  PartitionState fresh(grown, state.assignment(), k);
  EXPECT_EQ(state.num_parts(), fresh.num_parts());
  for (PartId q = 0; q < k; ++q) {
    EXPECT_NEAR(state.part_weight(q), fresh.part_weight(q), 1e-9) << "part " << q;
    EXPECT_NEAR(state.part_cut(q), fresh.part_cut(q), 1e-9) << "part " << q;
  }
  EXPECT_NEAR(state.sum_part_cut(), fresh.sum_part_cut(), 1e-9);
  EXPECT_NEAR(state.max_part_cut(), fresh.max_part_cut(), 1e-9);
  EXPECT_NEAR(state.imbalance_sq(), fresh.imbalance_sq(), 1e-9);
  for (VertexId v = 0; v < grown.num_vertices(); ++v) {
    EXPECT_EQ(state.is_boundary(v), fresh.is_boundary(v)) << "vertex " << v;
  }
  EXPECT_EQ(state.boundary_vertices(), fresh.boundary_vertices());
}

class RebindFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RebindFuzz, MatchesFreshConstructionThroughGrowRewireChains) {
  Rng rng(0x4eb1 + static_cast<std::uint64_t>(GetParam()) * 977);
  const bool weighted = GetParam() % 2 == 1;
  const PartId k = 2 + GetParam() % 4;

  // Chain several rebinds on ONE state, interleaved with random moves, so
  // stale bookkeeping from any step would surface in a later comparison.
  // (A deque: the state holds a pointer into the container, so elements
  // must not move when a snapshot is appended.)
  std::deque<Graph> snapshots;
  snapshots.push_back(make_connected_geometric(30 + GetParam() * 3, 0.25, rng));
  Assignment a(static_cast<std::size_t>(snapshots.back().num_vertices()));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(k));
  PartitionState state(snapshots.back(), a, k);

  for (int step = 0; step < 4; ++step) {
    const Graph& old_g = snapshots.back();
    const auto extra = static_cast<VertexId>(rng.uniform_int(1, 8));
    snapshots.push_back(grow_and_perturb(old_g, extra, rng, weighted));
    const Graph& grown = snapshots.back();
    const GraphDelta delta = diff_graphs(old_g, grown);

    Assignment new_parts(static_cast<std::size_t>(extra));
    for (auto& p : new_parts) p = static_cast<PartId>(rng.uniform_int(k));
    state.rebind_grown(grown, delta.touched_old, new_parts);

    ASSERT_EQ(state.graph().num_vertices(), grown.num_vertices());
    expect_state_matches_fresh(state, grown, k);

    // Keep mutating: the rebound frontier must stay move-consistent.
    for (int m = 0; m < 20; ++m) {
      const auto v = static_cast<VertexId>(
          rng.uniform_int(grown.num_vertices()));
      state.move(v, static_cast<PartId>(rng.uniform_int(k)));
    }
    expect_state_matches_fresh(state, grown, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, RebindFuzz, ::testing::Range(0, 8));

TEST(PartitionStateRebind, PureGrowthViaAppendedDelta) {
  const Graph old_g = make_grid(4, 4);
  Assignment a(16, 0);
  for (std::size_t i = 8; i < 16; ++i) a[i] = 1;
  PartitionState state(old_g, a, 2);

  // Append a 5th row.
  GraphBuilder b(20);
  for (VertexId u = 0; u < 16; ++u) {
    for (const VertexId v : old_g.neighbors(u)) {
      if (v > u) b.add_edge(u, v);
    }
  }
  for (VertexId c = 0; c < 4; ++c) {
    b.add_edge(12 + c, 16 + c);
    if (c > 0) b.add_edge(16 + c - 1, 16 + c);
  }
  const Graph grown = b.build();
  const GraphDelta delta = appended_delta(grown, 16);

  const Assignment new_parts(4, 1);
  state.rebind_grown(grown, delta.touched_old, new_parts);
  expect_state_matches_fresh(state, grown, 2);
}

TEST(PartitionStateRebind, NoChangeDeltaIsIdentity) {
  Rng rng(0x1de);
  const Graph g = make_grid(5, 5);
  Assignment a(25);
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(3));
  PartitionState state(g, a, 3);
  const double fitness_before = state.fitness({Objective::kWorstComm, 1.0});
  state.rebind_grown(g, {}, {});
  EXPECT_DOUBLE_EQ(state.fitness({Objective::kWorstComm, 1.0}),
                   fitness_before);
  expect_state_matches_fresh(state, g, 3);
}

TEST(PartitionStateRebind, PreconditionsRejected) {
  const Graph old_g = make_grid(3, 3);
  const Graph grown = make_grid(4, 3);
  PartitionState state(old_g, Assignment(9, 0), 2);
  // Wrong new_parts length.
  EXPECT_THROW(state.rebind_grown(grown, {}, {}), Error);
  // Out-of-range part.
  EXPECT_THROW(state.rebind_grown(grown, {}, Assignment(3, 7)), Error);
  // touched_old out of range / unsorted.
  EXPECT_THROW(
      state.rebind_grown(grown, std::vector<VertexId>{42}, Assignment(3, 0)),
      Error);
  EXPECT_THROW(state.rebind_grown(grown, std::vector<VertexId>{5, 2},
                                  Assignment(3, 0)),
               Error);
  // Shrinking is not supported.
  PartitionState big(grown, Assignment(12, 0), 2);
  EXPECT_THROW(big.rebind_grown(old_g, {}, {}), Error);
}

// ---------------------------------------------------------------------------
// content_hash(): the replication divergence digest.  Commutative over
// per-item hashes, so it must be independent of HOW a state was reached and
// sensitive to WHAT the state is.

TEST(PartitionStateContentHash, MoveOrderInvariant) {
  Rng rng(0xd16e57);
  const Graph g = make_grid(8, 8);
  Assignment a(64);
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
  PartitionState forward(g, a, 4);
  PartitionState backward(g, a, 4);

  // The same set of moves, applied in opposite orders (with some vertices
  // moved twice along the way on one side only — the end state is what
  // counts, not the path).
  const std::vector<std::pair<VertexId, PartId>> moves = {
      {3, 1}, {17, 2}, {40, 0}, {63, 3}, {9, 2}};
  for (const auto& [v, p] : moves) forward.move(v, p);
  backward.move(17, 0);  // detour; overwritten below
  for (auto it = moves.rbegin(); it != moves.rend(); ++it) {
    backward.move(it->first, it->second);
  }
  EXPECT_EQ(forward.assignment(), backward.assignment());
  EXPECT_EQ(forward.content_hash(), backward.content_hash());
}

TEST(PartitionStateContentHash, SingleReassignmentChangesTheDigest) {
  const Graph g = make_grid(6, 6);
  Assignment a(36, 0);
  for (std::size_t v = 18; v < 36; ++v) a[v] = 1;
  PartitionState state(g, a, 2);
  const std::uint64_t before = state.content_hash();
  state.move(0, 1);
  EXPECT_NE(state.content_hash(), before);
  state.move(0, 0);  // moving back restores the digest exactly
  EXPECT_EQ(state.content_hash(), before);
}

TEST(PartitionStateContentHash, PartRelabelingIsVisible) {
  // A wholesale 0<->1 relabel keeps the cut and the balance identical —
  // exactly the tampering only a content digest can detect (the replication
  // fail-stop relies on this).
  const Graph g = make_grid(6, 6);
  Assignment a(36, 0);
  for (std::size_t v = 18; v < 36; ++v) a[v] = 1;
  Assignment swapped = a;
  for (auto& p : swapped) p = static_cast<PartId>(1 - p);
  PartitionState original(g, a, 2);
  PartitionState relabeled(g, swapped, 2);
  EXPECT_NE(original.content_hash(), relabeled.content_hash());
}

TEST(PartitionStateContentHash, FreeFunctionAgreesWithMember) {
  Rng rng(0x8a53d);
  const Graph g = make_grid(7, 5);
  Assignment a(35);
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(3));
  PartitionState state(g, a, 3);
  EXPECT_EQ(state.content_hash(), assignment_content_hash(g, a, 3));
  // ... and stays in agreement after incremental moves.
  state.move(12, 2);
  state.move(30, 0);
  EXPECT_EQ(state.content_hash(),
            assignment_content_hash(g, state.assignment(), 3));
}

}  // namespace
}  // namespace gapart
