// Second property batch: determinism contracts, exhaustive small-space
// checks, and weighted-graph fuzzing for the refinement stack.
#include <gtest/gtest.h>

#include <set>

#include "baselines/kl.hpp"
#include "common/rng.hpp"
#include "core/dpga.hpp"
#include "core/hill_climb.hpp"
#include "core/init.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "sfc/indexing.hpp"
#include "spectral/rsb.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

// ---------------------------------------------------------------------------
// Determinism contracts: same seed -> identical output, for every stochastic
// public entry point.
TEST(Determinism, RsbSameSeedSameResult) {
  const Mesh mesh = paper_mesh(118);
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(rsb_partition(mesh.graph, 8, a), rsb_partition(mesh.graph, 8, b));
}

TEST(Determinism, MeshGenerationSameSeedSameGraph) {
  Rng a(9);
  Rng b(9);
  const Domain d(DomainShape::kLShape);
  const Mesh ma = generate_mesh(d, 120, a);
  const Mesh mb = generate_mesh(d, 120, b);
  EXPECT_EQ(ma.graph.num_edges(), mb.graph.num_edges());
  EXPECT_EQ(ma.triangles.size(), mb.triangles.size());
}

TEST(Determinism, DensifySameSeedSameMesh) {
  Rng a(11);
  Rng b(11);
  const Domain d(DomainShape::kDisc);
  Rng base_rng(1);
  const Mesh base = generate_mesh(d, 90, base_rng);
  const Mesh ga = densify_mesh(base, d, 20, a);
  const Mesh gb = densify_mesh(base, d, 20, b);
  for (std::size_t i = 0; i < ga.points.size(); ++i) {
    EXPECT_EQ(ga.points[i], gb.points[i]);
  }
}

TEST(Determinism, IncrementalSeedSameSeedSameAssignment) {
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng prev_rng(3);
  const auto prev = random_balanced_assignment(78, 4, prev_rng);
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(incremental_seed_assignment(grown.graph, prev, 4, a),
            incremental_seed_assignment(grown.graph, prev, 4, b));
}

// ---------------------------------------------------------------------------
// Exhaustive small-space checks.
TEST(Exhaustive, InterleaveBijectiveForMixedWidths) {
  // All 2^3 * 2^2 * 2^1 combinations of a (3,2,1)-bit space map to distinct
  // 6-bit codes covering exactly [0, 64).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i1 = 0; i1 < 8; ++i1) {
    for (std::uint64_t i2 = 0; i2 < 4; ++i2) {
      for (std::uint64_t i3 = 0; i3 < 2; ++i3) {
        const std::uint64_t idx[3] = {i1, i2, i3};
        const int bits[3] = {3, 2, 1};
        const auto code = interleave_bits(idx, bits);
        EXPECT_LT(code, 64u);
        seen.insert(code);
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Exhaustive, BisectionFitnessOptimumOnTinyPath) {
  // Enumerate all 2^6 bisections of P6 and verify the GA objective's
  // optimum is the canonical half/half split — pinning the fitness ordering
  // end to end.
  const Graph g = make_path(6);
  const FitnessParams params{Objective::kTotalComm, 1.0};
  double best = -1e18;
  Assignment best_a;
  for (int mask = 0; mask < 64; ++mask) {
    Assignment a(6);
    for (int v = 0; v < 6; ++v) a[static_cast<std::size_t>(v)] = (mask >> v) & 1;
    const double f = evaluate_fitness(g, a, 2, params);
    if (f > best) {
      best = f;
      best_a = a;
    }
  }
  const auto m = compute_metrics(g, best_a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
  EXPECT_DOUBLE_EQ(best, -2.0);  // one cut edge counted twice in sum_q C(q)
}

TEST(Exhaustive, HillClimbReachesEnumeratedOptimumOnTinyGraph) {
  const Graph g = make_path(6);
  // From every boundary-adjacent start, §3.6 hill climbing ends at a local
  // optimum whose fitness is >= its start (and often the global -2).
  HillClimbOptions opt;
  opt.max_passes = 10;
  for (int mask = 0; mask < 64; ++mask) {
    Assignment a(6);
    for (int v = 0; v < 6; ++v) a[static_cast<std::size_t>(v)] = (mask >> v) & 1;
    const double before = evaluate_fitness(g, a, 2, opt.fitness);
    Assignment climbed = a;
    hill_climb(g, climbed, 2, opt);
    EXPECT_GE(evaluate_fitness(g, climbed, 2, opt.fitness), before);
  }
}

// ---------------------------------------------------------------------------
// Weighted-graph fuzz for the refinement stack.
class WeightedRefinementFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WeightedRefinementFuzz, KlAndHillClimbNeverWorsenWeightedFitness) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random weighted graph: weights in [0.5, 3], edges in [0.2, 5].
  const VertexId n = 40;
  GraphBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    b.set_vertex_weight(v, rng.uniform(0.5, 3.0));
  }
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(0.12)) b.add_edge(u, v, rng.uniform(0.2, 5.0));
    }
  }
  const Graph g = b.build();

  for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
    Assignment a(static_cast<std::size_t>(n));
    for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
    const FitnessParams params{obj, 1.0};
    const double before = evaluate_fitness(g, a, 4, params);

    PartitionState kl_state(g, a, 4);
    KlOptions kl;
    kl.fitness = params;
    kl_refine(kl_state, kl);
    EXPECT_GE(kl_state.fitness(params), before - 1e-9);

    Assignment hc = a;
    HillClimbOptions opt;
    opt.fitness = params;
    hill_climb(g, hc, 4, opt);
    EXPECT_GE(evaluate_fitness(g, hc, 4, params), before - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedRefinementFuzz,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// DPGA with multiple migrants.
TEST(DpgaMigrants, MultipleMigrantsStillValid) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(13);
  DpgaConfig cfg;
  cfg.num_islands = 4;
  cfg.migrants_per_exchange = 3;
  cfg.ga.num_parts = 4;
  cfg.ga.population_size = 48;
  cfg.ga.max_generations = 20;
  auto init = make_random_population(78, 4, cfg.ga.population_size, rng);
  const auto res = run_dpga(mesh.graph, cfg, std::move(init), rng.split());
  EXPECT_TRUE(is_valid_assignment(mesh.graph, res.best, 4));
  // More aggressive mixing must not break the monotone global history.
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i].best_fitness, res.history[i - 1].best_fitness);
  }
}

}  // namespace
}  // namespace gapart
