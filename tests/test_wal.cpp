// Durability building blocks: CRC framing, the delta codec round-trip, log
// read/append (torn tails vs mid-log corruption), the compaction and
// admission policies, and the retry/backoff loop.
#include "service/wal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/backoff.hpp"
#include "common/checksum.hpp"
#include "core/graph_delta.hpp"
#include "graph/delta_codec.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "service/refine_policy.hpp"

namespace gapart {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// CRC32 (the frame checksum).

TEST(WalChecksum, KnownVector) {
  // The IEEE 802.3 reference value for the ASCII digits "123456789".
  const std::string digits = "123456789";
  EXPECT_EQ(crc32(digits.data(), digits.size()), 0xCBF43926u);
}

TEST(WalChecksum, ChainableAcrossSplits) {
  const std::string bytes = "write-ahead logs never lie";
  const std::uint32_t whole = crc32(bytes.data(), bytes.size());
  for (std::size_t split = 0; split <= bytes.size(); ++split) {
    const std::uint32_t head = crc32(bytes.data(), split);
    const std::uint32_t chained =
        crc32(bytes.data() + split, bytes.size() - split, head);
    EXPECT_EQ(chained, whole) << "split at " << split;
  }
}

TEST(WalChecksum, SensitiveToEveryByte) {
  std::string bytes = "sensitive";
  const std::uint32_t base = crc32(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] ^= 0x01;
    EXPECT_NE(crc32(mutated.data(), mutated.size()), base) << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Delta codec: damage-proportional record bytes -> exact graph rebuild.

void expect_graphs_equal(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(a.vertex_weight(v), b.vertex_weight(v)) << "vertex " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size()) << "vertex " << v;
    const auto wa = a.edge_weights(v);
    const auto wb = b.edge_weights(v);
    for (std::size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i], nb[i]) << "vertex " << v << " slot " << i;
      EXPECT_DOUBLE_EQ(wa[i], wb[i]) << "vertex " << v << " slot " << i;
    }
  }
}

TEST(WalCodec, PureGrowthRoundTrip) {
  const Graph prev = make_grid(8, 8);
  const Graph grown = make_grid(10, 8);
  const GraphDelta delta = diff_graphs(prev, grown);

  const std::string bytes = encode_delta(grown, delta);
  // Damage-proportional: two new rows touch far fewer than |V| vertices, so
  // the record must be much smaller than a full snapshot would be.
  EXPECT_LT(bytes.size(), 2000u);

  const DecodedDelta decoded = decode_delta(prev, bytes);
  expect_graphs_equal(decoded.grown, grown);
  EXPECT_EQ(decoded.delta.old_num_vertices, delta.old_num_vertices);
  EXPECT_EQ(decoded.delta.touched_old, delta.touched_old);
}

TEST(WalCodec, ChurnRoundTripWithWeights) {
  // Same vertex set, rewired + reweighted interior: every change must come
  // through touched_old rows.
  const auto build = [](bool churned) {
    GraphBuilder b(12);
    for (VertexId v = 0; v + 1 < 12; ++v) {
      b.add_edge(v, v + 1, churned && v == 5 ? 3.5 : 1.0);
    }
    b.add_edge(0, 11, 2.0);
    if (churned) b.add_edge(2, 9, 0.75);
    b.set_vertex_weight(3, churned ? 4.0 : 1.0);
    return b.build();
  };
  const Graph prev = build(false);
  const Graph grown = build(true);
  const GraphDelta delta = diff_graphs(prev, grown);
  ASSERT_GT(delta.touched_old.size(), 0u);

  const DecodedDelta decoded = decode_delta(prev, encode_delta(grown, delta));
  expect_graphs_equal(decoded.grown, grown);
  EXPECT_EQ(decoded.delta.touched_old, delta.touched_old);
}

TEST(WalCodec, GrowthPlusChurnRoundTrip) {
  // New vertices AND old-old rewiring in one delta.
  GraphBuilder pb(6);
  for (VertexId v = 0; v + 1 < 6; ++v) pb.add_edge(v, v + 1);
  const Graph prev = pb.build();

  GraphBuilder gb(9);
  for (VertexId v = 0; v + 1 < 6; ++v) gb.add_edge(v, v + 1);
  gb.add_edge(1, 4, 2.0);   // old-old churn
  gb.add_edge(5, 6);        // growth attaching to a touched survivor
  gb.add_edge(6, 7);
  gb.add_edge(7, 8);
  gb.add_edge(8, 2, 1.5);   // growth attaching back into the interior
  const Graph grown = gb.build();

  const GraphDelta delta = diff_graphs(prev, grown);
  const DecodedDelta decoded = decode_delta(prev, encode_delta(grown, delta));
  expect_graphs_equal(decoded.grown, grown);
  EXPECT_EQ(decoded.delta.touched_old, delta.touched_old);
}

TEST(WalCodec, RejectsTruncatedAndCorruptBytes) {
  const Graph prev = make_grid(6, 6);
  const Graph grown = make_grid(7, 6);
  const std::string bytes = encode_delta(grown, diff_graphs(prev, grown));

  EXPECT_THROW(decode_delta(prev, std::string_view(bytes).substr(
                                      0, bytes.size() - 4)),
               Error);
  EXPECT_THROW(decode_delta(prev, std::string_view(bytes).substr(1)), Error);
  EXPECT_THROW(decode_delta(prev, ""), Error);
  // Decoding against the wrong previous snapshot must fail the seam checks,
  // not fabricate a graph.
  EXPECT_THROW(decode_delta(make_grid(5, 5), bytes), Error);
}

// ---------------------------------------------------------------------------
// Log file framing.

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/gapart_wal_" + name;
  fs::remove_all(dir);
  return dir;
}

std::unique_ptr<SessionWal> make_wal(const std::string& dir,
                                     DurabilityConfig cfg = {}) {
  cfg.dir = dir;
  const Graph g = make_grid(4, 4);
  Assignment a(16, 0);
  for (std::size_t i = 8; i < 16; ++i) a[i] = 1;
  return SessionWal::create(dir, cfg, 2, FitnessParams{}, g, a);
}

std::uint64_t file_size(const std::string& path) {
  return static_cast<std::uint64_t>(fs::file_size(path));
}

TEST(WalLog, AppendReadRoundTrip) {
  const std::string dir = fresh_dir("roundtrip");
  {
    auto wal = make_wal(dir);
    wal->append(WalRecordType::kDelta, 1, 2, "first-delta", 5);
    wal->append(WalRecordType::kDelta, 2, 0, "second-delta", 3);
    wal->append(WalRecordType::kRefine, 2, 0, std::string("a\0b", 3), 0);
    const WalStats st = wal->stats();
    EXPECT_EQ(st.appends, 3u);
    EXPECT_EQ(st.log_records, 3u);
    EXPECT_EQ(st.log_damage, 8);
    EXPECT_GE(st.fsyncs, 3u);  // default policy: every record
  }
  const WalReadResult read = read_log_file(dir + "/wal.log");
  EXPECT_FALSE(read.torn_tail);
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0].type, WalRecordType::kDelta);
  EXPECT_EQ(read.records[0].epoch, 1u);
  EXPECT_EQ(read.records[0].flags, 2u);
  EXPECT_EQ(read.records[0].payload, "first-delta");
  EXPECT_EQ(read.records[1].payload, "second-delta");
  EXPECT_EQ(read.records[2].type, WalRecordType::kRefine);
  EXPECT_EQ(read.records[2].payload, std::string("a\0b", 3));
  EXPECT_EQ(read.valid_bytes, file_size(dir + "/wal.log"));
}

TEST(WalLog, TornTailIsDroppedNotFatal) {
  const std::string dir = fresh_dir("torn");
  std::uint64_t after_two = 0;
  {
    auto wal = make_wal(dir);
    wal->append(WalRecordType::kDelta, 1, 0, "one", 1);
    wal->append(WalRecordType::kDelta, 2, 0, "two", 1);
    after_two = file_size(dir + "/wal.log");
    wal->append(WalRecordType::kDelta, 3, 0, "three-longer-payload", 1);
  }
  // Chop bytes off the final record at several depths: partial payload,
  // partial header, a single stray byte.
  for (const std::uint64_t keep :
       {after_two + 30, after_two + 10, after_two + 1}) {
    fs::resize_file(dir + "/wal.log", keep);
    const WalReadResult read = read_log_file(dir + "/wal.log");
    EXPECT_TRUE(read.torn_tail) << "keep=" << keep;
    ASSERT_EQ(read.records.size(), 2u) << "keep=" << keep;
    EXPECT_EQ(read.records[1].payload, "two");
    EXPECT_EQ(read.valid_bytes, after_two);
  }
  // Truncated exactly at a record boundary: clean, no torn tail.
  fs::resize_file(dir + "/wal.log", after_two);
  const WalReadResult read = read_log_file(dir + "/wal.log");
  EXPECT_FALSE(read.torn_tail);
  EXPECT_EQ(read.records.size(), 2u);
}

TEST(WalLog, CorruptionBeforeValidRecordsIsFatal) {
  const std::string dir = fresh_dir("midlog");
  std::uint64_t after_one = 0;
  {
    auto wal = make_wal(dir);
    wal->append(WalRecordType::kDelta, 1, 0, "payload-number-one", 1);
    after_one = file_size(dir + "/wal.log");
    wal->append(WalRecordType::kDelta, 2, 0, "payload-number-two", 1);
  }
  // Flip one payload byte of record 1: its CRC fails, and because record 2
  // still parses, this is mid-log corruption — reading must refuse.
  {
    std::fstream f(dir + "/wal.log",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(after_one) - 4);
    f.put('X');
  }
  EXPECT_THROW(read_log_file(dir + "/wal.log"), WalCorruptError);
}

TEST(WalLog, MissingAndHeaderOnlyFilesReadEmpty) {
  const std::string dir = fresh_dir("empty");
  const WalReadResult missing = read_log_file(dir + "/wal.log");
  EXPECT_FALSE(missing.torn_tail);
  EXPECT_TRUE(missing.records.empty());

  { auto wal = make_wal(dir); }  // create writes the header, no records
  const WalReadResult header_only = read_log_file(dir + "/wal.log");
  EXPECT_FALSE(header_only.torn_tail);
  EXPECT_TRUE(header_only.records.empty());
  EXPECT_EQ(header_only.valid_bytes, file_size(dir + "/wal.log"));
}

TEST(WalLog, ForeignFileIsRejected) {
  const std::string dir = fresh_dir("foreign");
  fs::create_directories(dir);
  {
    std::ofstream f(dir + "/wal.log", std::ios::binary);
    f << "this is not a write-ahead log at all";
  }
  EXPECT_THROW(read_log_file(dir + "/wal.log"), WalCorruptError);
}

TEST(WalLog, CompactTruncatesAndAppendsResume) {
  const std::string dir = fresh_dir("compact");
  DurabilityConfig cfg;
  auto wal = make_wal(dir, cfg);
  wal->append(WalRecordType::kDelta, 1, 0, "aaa", 4);
  wal->append(WalRecordType::kDelta, 2, 0, "bbb", 4);

  const Graph g = make_grid(4, 4);
  const Assignment a(16, 1);
  wal->compact(2, g, a);
  WalStats st = wal->stats();
  EXPECT_EQ(st.compactions, 1u);
  EXPECT_EQ(st.snapshot_epoch, 2u);
  EXPECT_EQ(st.log_records, 0u);
  EXPECT_EQ(st.log_damage, 0);

  // The log is empty again and appends pick up after the checkpoint.
  EXPECT_TRUE(read_log_file(dir + "/wal.log").records.empty());
  wal->append(WalRecordType::kDelta, 3, 1, "ccc", 4);
  const WalReadResult read = read_log_file(dir + "/wal.log");
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].epoch, 3u);

  // CURRENT names the new checkpoint; the stale epoch-0 snapshot is gone.
  std::ifstream cur(dir + "/CURRENT");
  std::uint64_t epoch = 99;
  cur >> epoch;
  EXPECT_EQ(epoch, 2u);
  EXPECT_FALSE(fs::exists(dir + "/snap-0.graph"));
  EXPECT_TRUE(fs::exists(dir + "/snap-2.graph"));
}

TEST(WalLog, FsyncPolicyGovernsSyncCount) {
  DurabilityConfig every_n;
  every_n.fsync = FsyncPolicy::kEveryN;
  every_n.fsync_interval = 3;
  const std::string dir_n = fresh_dir("fsync_n");
  {
    auto wal = make_wal(dir_n, every_n);
    const std::uint64_t base = wal->stats().fsyncs;  // creation syncs
    for (int i = 1; i <= 7; ++i) {
      wal->append(WalRecordType::kDelta, static_cast<std::uint64_t>(i), 0,
                  "x", 1);
    }
    EXPECT_EQ(wal->stats().fsyncs - base, 2u);  // after records 3 and 6
    wal->sync();                                // flushes the 7th
    EXPECT_EQ(wal->stats().fsyncs - base, 3u);
    wal->sync();  // nothing unsynced: no-op
    EXPECT_EQ(wal->stats().fsyncs - base, 3u);
  }

  DurabilityConfig never;
  never.fsync = FsyncPolicy::kNever;
  const std::string dir_never = fresh_dir("fsync_never");
  {
    auto wal = make_wal(dir_never, never);
    const std::uint64_t base = wal->stats().fsyncs;
    wal->append(WalRecordType::kDelta, 1, 0, "x", 1);
    wal->append(WalRecordType::kDelta, 2, 0, "x", 1);
    EXPECT_EQ(wal->stats().fsyncs - base, 0u);
  }

  EXPECT_STREQ(fsync_policy_name(FsyncPolicy::kNever), "never");
  EXPECT_STREQ(fsync_policy_name(FsyncPolicy::kEveryRecord), "every_record");
  EXPECT_STREQ(fsync_policy_name(FsyncPolicy::kEveryN), "every_n");
}

TEST(WalLog, AssignmentPayloadRoundTrip) {
  const Assignment a = {0, 3, 1, 2, 2, 0, 1};
  const std::string payload = encode_assignment(a);
  EXPECT_EQ(decode_assignment(payload), a);
  EXPECT_THROW(decode_assignment(payload.substr(0, payload.size() - 1)),
               Error);
  EXPECT_THROW(decode_assignment(""), Error);
}

// ---------------------------------------------------------------------------
// Compaction + admission policies (pure).

TEST(WalCompactionPolicy, TriggersOnDamageOrBytesAboveFloor) {
  CompactionPolicy p;
  p.damage_threshold = 100;
  p.bytes_threshold = 1000;
  p.min_records = 4;

  EXPECT_FALSE(decide_compaction(p, {1000, 10000, 3}));  // below min_records
  EXPECT_FALSE(decide_compaction(p, {99, 999, 10}));     // nothing fired
  EXPECT_TRUE(decide_compaction(p, {100, 0, 4}));        // damage fired
  EXPECT_TRUE(decide_compaction(p, {0, 1000, 4}));       // bytes fired
}

TEST(WalCompactionPolicy, ZeroThresholdsDisable) {
  CompactionPolicy p;
  p.damage_threshold = 0;
  p.bytes_threshold = 0;
  p.min_records = 1;
  EXPECT_FALSE(decide_compaction(p, {1 << 30, 1u << 30, 1000}));
}

TEST(WalAdmissionPolicy, DegradationLadder) {
  OverloadConfig c;
  c.max_inflight_repairs = 4;
  c.shed_verification_backlog = 8;

  EXPECT_EQ(decide_admission(c, {1, 0}), AdmitDecision::kAdmit);
  EXPECT_EQ(decide_admission(c, {4, 7}), AdmitDecision::kAdmit);
  EXPECT_EQ(decide_admission(c, {4, 8}), AdmitDecision::kShedVerification);
  EXPECT_EQ(decide_admission(c, {5, 0}), AdmitDecision::kReject);
  // Reject outranks shed.
  EXPECT_EQ(decide_admission(c, {5, 100}), AdmitDecision::kReject);
}

TEST(WalAdmissionPolicy, ZeroThresholdsDisable) {
  const OverloadConfig c;  // all zeros
  EXPECT_EQ(decide_admission(c, {1000, 1000}), AdmitDecision::kAdmit);
  EXPECT_FALSE(defer_refinement(c, 1000));

  OverloadConfig defer;
  defer.defer_refinement_backlog = 5;
  EXPECT_FALSE(defer_refinement(defer, 4));
  EXPECT_TRUE(defer_refinement(defer, 5));

  EXPECT_STREQ(admit_decision_name(AdmitDecision::kAdmit), "admit");
  EXPECT_STREQ(admit_decision_name(AdmitDecision::kShedVerification),
               "shed_verification");
  EXPECT_STREQ(admit_decision_name(AdmitDecision::kReject), "reject");
}

// ---------------------------------------------------------------------------
// Retry with exponential backoff.

TEST(WalBackoff, RetriesTransientFailuresWithExponentialSchedule) {
  BackoffPolicy p;
  p.max_attempts = 5;
  p.initial_seconds = 0.001;
  p.multiplier = 2.0;
  p.max_seconds = 0.003;

  int calls = 0;
  std::vector<double> slept;
  const int retries = retry_with_backoff(
      p,
      [&] {
        if (++calls < 4) throw IoError("transient");
      },
      [&](double s) { slept.push_back(s); });
  EXPECT_EQ(retries, 3);
  EXPECT_EQ(calls, 4);
  // 0.001, 0.002, then capped at 0.003.
  ASSERT_EQ(slept.size(), 3u);
  EXPECT_DOUBLE_EQ(slept[0], 0.001);
  EXPECT_DOUBLE_EQ(slept[1], 0.002);
  EXPECT_DOUBLE_EQ(slept[2], 0.003);
}

TEST(WalBackoff, ExhaustionRethrowsAndNonTransientPropagates) {
  BackoffPolicy p;
  p.max_attempts = 3;
  int io_calls = 0;
  EXPECT_THROW(retry_with_backoff(
                   p, [&] { ++io_calls; throw IoError("down"); },
                   [](double) {}),
               IoError);
  EXPECT_EQ(io_calls, 3);

  // Contract violations are not transient: no retry may paper over a bug.
  int logic_calls = 0;
  EXPECT_THROW(retry_with_backoff(
                   p, [&] { ++logic_calls; throw Error("bug"); },
                   [](double) {}),
               Error);
  EXPECT_EQ(logic_calls, 1);

  int ok_calls = 0;
  EXPECT_EQ(retry_with_backoff(p, [&] { ++ok_calls; }, [](double) {}), 0);
  EXPECT_EQ(ok_calls, 1);
}

// ---------------------------------------------------------------------------
// Replication-era additions: close-time flush under kEveryN, the durable
// offset the shipper reads up to, live tail reads, and snapshot digests in
// CURRENT.

TEST(WalLog, EveryNFlushesResidualRecordsOnClose) {
  // Regression: with fsync=kEveryN a session closed between interval
  // boundaries used to leave its last records unsynced — an orderly
  // shutdown could lose acknowledged updates.  Destruction must flush.
  DurabilityConfig every_n;
  every_n.fsync = FsyncPolicy::kEveryN;
  every_n.fsync_interval = 100;  // far larger than the appends below
  const std::string dir = fresh_dir("close_flush");
  std::uint64_t synced_before_close = 0;
  std::uint64_t synced_after_appends = 0;
  {
    auto wal = make_wal(dir, every_n);
    synced_before_close = wal->stats().fsyncs;
    wal->append(WalRecordType::kDelta, 1, 0, "only-record", 1);
    wal->append(WalRecordType::kDelta, 2, 0, "still-buffered", 1);
    synced_after_appends = wal->stats().fsyncs;
    EXPECT_EQ(wal->stats().durable_bytes, kWalLogHeaderBytes)
        << "interval not reached: nothing past the header is durable yet";
  }
  EXPECT_EQ(synced_after_appends, synced_before_close)
      << "sanity: the interval must not have fired during the test";
  // After close, recovery sees both records — the destructor synced them.
  const auto rec = SessionWal::recover(dir, every_n);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[1].payload, "still-buffered");
}

TEST(WalLog, DurableBytesTracksTheFsyncFrontier) {
  DurabilityConfig every_n;
  every_n.fsync = FsyncPolicy::kEveryN;
  every_n.fsync_interval = 2;
  const std::string dir = fresh_dir("durable_bytes");
  auto wal = make_wal(dir, every_n);
  EXPECT_EQ(wal->stats().durable_bytes, kWalLogHeaderBytes);
  wal->append(WalRecordType::kDelta, 1, 0, "a", 1);
  // One record appended, none synced: the frontier holds at the header.
  EXPECT_EQ(wal->stats().durable_bytes, kWalLogHeaderBytes);
  EXPECT_GT(wal->stats().log_bytes, 0u);
  wal->append(WalRecordType::kDelta, 2, 0, "b", 1);
  // Interval hit: everything written is now durable.
  EXPECT_EQ(wal->stats().durable_bytes,
            kWalLogHeaderBytes + wal->stats().log_bytes);
  wal->append(WalRecordType::kDelta, 3, 0, "c", 1);
  EXPECT_LT(wal->stats().durable_bytes,
            kWalLogHeaderBytes + wal->stats().log_bytes);
  wal->sync();
  EXPECT_EQ(wal->stats().durable_bytes,
            kWalLogHeaderBytes + wal->stats().log_bytes);
}

TEST(WalLog, TailReadResumesAtFrameBoundaries) {
  const std::string dir = fresh_dir("tail");
  auto wal = make_wal(dir);
  wal->append(WalRecordType::kDelta, 1, 0, "one", 1);
  wal->append(WalRecordType::kDelta, 2, 0, "two", 1);
  wal->append(WalRecordType::kRefine, 2, 0, "ref", 0);
  const std::string path = dir + "/wal.log";
  const std::uint64_t end = kWalLogHeaderBytes + wal->stats().log_bytes;

  // Full read from the header.
  const WalTail all = read_log_tail(path, kWalLogHeaderBytes, end);
  ASSERT_EQ(all.records.size(), 3u);
  EXPECT_EQ(all.records[0].payload, "one");
  EXPECT_EQ(all.records[2].type, WalRecordType::kRefine);
  EXPECT_EQ(all.end_offset, end);
  ASSERT_EQ(all.ends.size(), 3u);
  EXPECT_EQ(all.ends[2], end);

  // Resume from a recorded boundary: exactly the remaining records.
  const WalTail rest = read_log_tail(path, all.ends[0], end);
  ASSERT_EQ(rest.records.size(), 2u);
  EXPECT_EQ(rest.records[0].payload, "two");

  // A limit strictly inside the second frame stops the read BEFORE it: the
  // un-fsynced suffix must never be shipped.
  const WalTail capped = read_log_tail(path, kWalLogHeaderBytes,
                                       all.ends[1] - 1);
  ASSERT_EQ(capped.records.size(), 1u);
  EXPECT_EQ(capped.end_offset, all.ends[0]);

  // Offset past the file (compaction truncated under the reader) and a
  // missing file both read as empty, never throw.
  EXPECT_TRUE(read_log_tail(path, end + 4096, end + 8192).records.empty());
  EXPECT_TRUE(read_log_tail(dir + "/no-such.log", kWalLogHeaderBytes, end)
                  .records.empty());
}

TEST(WalLog, TailReadTreatsInvalidFrameAsInFlightAppend) {
  const std::string dir = fresh_dir("tail_torn");
  auto wal = make_wal(dir);
  wal->append(WalRecordType::kDelta, 1, 0, "whole", 1);
  const std::string path = dir + "/wal.log";
  const std::uint64_t whole_end = kWalLogHeaderBytes + wal->stats().log_bytes;
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\x55\x00\x33", 3);  // a torn append, mid-flight
  }
  // Unlike read_log_file on recovery, a live tail read reports the valid
  // prefix and stops — the torn bytes are tomorrow's complete record.
  const WalTail tail = read_log_tail(path, kWalLogHeaderBytes, whole_end + 3);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records[0].payload, "whole");
  EXPECT_EQ(tail.end_offset, whole_end);
}

TEST(WalLog, SnapshotDigestPersistsThroughCurrentFile) {
  const Graph g = make_grid(4, 4);
  Assignment a(16, 0);
  for (std::size_t i = 8; i < 16; ++i) a[i] = 1;
  const std::uint64_t digest = assignment_content_hash(g, a, 2);

  // A follower bootstrapping from a mid-life leader snapshot: epoch and
  // digest land in CURRENT and survive recovery.
  const std::string dir = fresh_dir("current_digest");
  DurabilityConfig cfg;
  cfg.dir = dir;
  {
    auto wal = SessionWal::create(dir, cfg, 2, FitnessParams{}, g, a,
                                  /*snapshot_epoch=*/7, digest);
    EXPECT_EQ(wal->stats().snapshot_epoch, 7u);
    EXPECT_EQ(wal->stats().snapshot_digest, digest);
  }
  auto rec = SessionWal::recover(dir, cfg);
  EXPECT_EQ(rec.snapshot_epoch, 7u);
  EXPECT_EQ(rec.snapshot_digest, digest);
  EXPECT_TRUE(rec.records.empty());

  // compact() refreshes both.
  auto wal = std::move(rec.wal);
  wal->append(WalRecordType::kDelta, 8, 0, "x", 1);
  wal->compact(8, g, a, digest ^ 0x1234u);
  EXPECT_EQ(wal->stats().snapshot_epoch, 8u);
  EXPECT_EQ(wal->stats().snapshot_digest, digest ^ 0x1234u);
  const auto rec2 = SessionWal::recover(dir, cfg);
  EXPECT_EQ(rec2.snapshot_epoch, 8u);
  EXPECT_EQ(rec2.snapshot_digest, digest ^ 0x1234u);
}

}  // namespace
}  // namespace gapart
