// Parallel frontier refinement: the conflict-screened batch apply
// (PartitionState::apply_candidate_batch) and the kParallelFrontier climb.
//
// The two fuzz families mirror the ISSUE's acceptance tests:
//   * conflict detector vs serial replay — applying a screened batch must
//     produce bit-identical cut/balance state to applying its surviving
//     moves one-by-one, and every charged gain must equal the exact fitness
//     delta measured at apply time;
//   * threads=1 parallel mode must be bit-identical to the serial frontier
//     climb across the same 12-seed parameter grid as SeededRepairFuzz.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "bench_common.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "core/hill_climb.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"

namespace gapart {
namespace {

using bench::DamagedGrid;
using bench::damaged_block_grid;

std::uint64_t fnv1a(const Assignment& a) {
  std::uint64_t h = 14695981039346656037ULL;
  for (PartId p : a) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
    h *= 1099511628211ULL;
  }
  return h;
}

/// The 12-seed parameter grid shared with SeededRepairFuzz in
/// test_hill_climb.cpp: 20/24/28 grids, k in 2..5, damage 8..40, both
/// objectives.
struct FuzzCase {
  VertexId n;
  PartId k;
  int damage;
  FitnessParams fitness;
  std::uint64_t seed;
};

FuzzCase fuzz_case(int param) {
  FuzzCase c;
  c.n = 20 + 4 * (param % 3);
  c.k = 2 + param % 4;
  c.damage = 8 + (param % 5) * 8;
  c.fitness = {param % 2 ? Objective::kWorstComm : Objective::kTotalComm, 1.0};
  c.seed = static_cast<std::uint64_t>(param);
  return c;
}

void expect_fixed_point(PartitionState& state, const HillClimbOptions& opt,
                        const char* label) {
  for (const VertexId v : state.boundary_vertices()) {
    EXPECT_LT(state.best_move(v, opt.fitness, opt.min_gain).to, 0)
        << label << ": vertex " << v << " still improvable";
  }
}

// ---------------------------------------------------------------------------
// apply_candidate_batch: conflict detector fuzz vs serial replay.

class ParallelRefineBatchFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRefineBatchFuzz, BatchApplyMatchesSerialReplayOfItsMoves) {
  const FuzzCase c = fuzz_case(GetParam());
  const Graph g = make_grid(c.n, c.n);
  const DamagedGrid d = damaged_block_grid(c.n, c.k, c.damage, c.seed);
  const double min_gain = 1e-9;

  PartitionState batch_state(g, d.start, c.k);
  PartitionState replay_state(g, d.start, c.k);

  // Several rounds: score the whole boundary against the frozen state, apply
  // the batch, repeat — so later rounds fuzz the detector on states the
  // batch engine itself produced, not just the pristine damaged grid.
  for (int round = 0; round < 4; ++round) {
    std::vector<CandidateMove> candidates;
    for (const VertexId v : batch_state.boundary_vertices()) {
      const BestMove best = batch_state.best_move(v, c.fitness, min_gain);
      candidates.push_back({v, best.to, best.gain});
    }
    if (candidates.empty()) break;

    const double fitness_before = batch_state.fitness(c.fitness);
    std::vector<CandidateMove> applied;
    std::vector<VertexId> deferred;
    const BatchApplyStats stats = batch_state.apply_candidate_batch(
        candidates, c.fitness, min_gain, &applied, &deferred);

    ASSERT_EQ(stats.applied, static_cast<int>(applied.size()));
    ASSERT_EQ(stats.deferred, static_cast<int>(deferred.size()));
    // The exact total fitness delta is the sum of the charged gains.
    EXPECT_NEAR(batch_state.fitness(c.fitness) - fitness_before,
                stats.fitness_gain, 1e-9)
        << "round " << round;

    // Serial replay: every applied move, one-by-one through the delta move
    // path, each charged gain checked against the exact move_gain at its
    // apply point.  A wrong conflict rule shows up as a gain mismatch here.
    for (const CandidateMove& m : applied) {
      EXPECT_NEAR(replay_state.move_gain(m.v, m.to, c.fitness), m.gain, 1e-9)
          << "round " << round << " vertex " << m.v;
      replay_state.move(m.v, m.to);
    }

    // Identical cut/balance state, bitwise (integer weights: every
    // maintained quantity is an exact sum).
    ASSERT_EQ(batch_state.assignment(), replay_state.assignment())
        << "round " << round;
    EXPECT_EQ(batch_state.sum_part_cut(), replay_state.sum_part_cut());
    EXPECT_EQ(batch_state.max_part_cut(), replay_state.max_part_cut());
    EXPECT_EQ(batch_state.imbalance_sq(), replay_state.imbalance_sq());
    for (PartId q = 0; q < c.k; ++q) {
      EXPECT_EQ(batch_state.part_weight(q), replay_state.part_weight(q));
      EXPECT_EQ(batch_state.part_cut(q), replay_state.part_cut(q));
    }
    EXPECT_EQ(batch_state.boundary_vertices(),
              replay_state.boundary_vertices());
    if (stats.applied == 0) break;
  }
}

TEST_P(ParallelRefineBatchFuzz, DeferredOnlyWithAnAppliedCulprit) {
  const FuzzCase c = fuzz_case(GetParam());
  const Graph g = make_grid(c.n, c.n);
  const DamagedGrid d = damaged_block_grid(c.n, c.k, c.damage, c.seed);

  PartitionState state(g, d.start, c.k);
  std::vector<CandidateMove> candidates;
  for (const VertexId v : state.boundary_vertices()) {
    const BestMove best = state.best_move(v, c.fitness, 1e-9);
    candidates.push_back({v, best.to, best.gain});
  }
  std::vector<VertexId> deferred;
  const BatchApplyStats stats = state.apply_candidate_batch(
      candidates, c.fitness, 1e-9, nullptr, &deferred);
  // A deferral needs a prior applied move in the same batch (that is what
  // termination of the parallel climb rests on).
  if (stats.applied == 0) {
    EXPECT_EQ(stats.deferred, 0);
  }
  // Every deferred vertex is still a live worklist entry, not a duplicate.
  for (const VertexId v : deferred) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, g.num_vertices());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRefineBatchFuzz,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// kParallelFrontier climb.

class ParallelRefineClimbFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRefineClimbFuzz, OneThreadBitIdenticalToSerialFrontier) {
  const FuzzCase c = fuzz_case(GetParam());
  const Graph g = make_grid(c.n, c.n);
  const DamagedGrid d = damaged_block_grid(c.n, c.k, c.damage, c.seed);

  HillClimbOptions serial;
  serial.mode = HillClimbMode::kFrontier;
  serial.fitness = c.fitness;
  serial.max_passes = 100;
  PartitionState a(g, d.start, c.k);
  const HillClimbResult res_serial = hill_climb(a, serial);

  // Null executor and a one-thread pool must both take the serial path.
  for (const int variant : {0, 1}) {
    Executor pool(1);
    HillClimbOptions par = serial;
    par.mode = HillClimbMode::kParallelFrontier;
    par.executor = variant == 0 ? nullptr : &pool;
    PartitionState b(g, d.start, c.k);
    const HillClimbResult res_par = hill_climb(b, par);
    EXPECT_EQ(fnv1a(a.assignment()), fnv1a(b.assignment()))
        << "variant " << variant;
    EXPECT_EQ(res_serial.moves, res_par.moves);
    EXPECT_EQ(res_serial.passes, res_par.passes);
    EXPECT_EQ(res_serial.examined, res_par.examined);
    EXPECT_EQ(res_serial.fitness_gain, res_par.fitness_gain);
    EXPECT_EQ(res_par.batch_rounds, 0);  // fell back to the serial path
  }
}

TEST_P(ParallelRefineClimbFuzz, ReachesVerifiedFixedPointMonotonically) {
  const FuzzCase c = fuzz_case(GetParam());
  const Graph g = make_grid(c.n, c.n);
  const DamagedGrid d = damaged_block_grid(c.n, c.k, c.damage, c.seed);

  Executor pool(4);
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kParallelFrontier;
  opt.executor = &pool;
  opt.fitness = c.fitness;
  opt.max_passes = 100;

  PartitionState state(g, d.start, c.k);
  const double before = state.fitness(opt.fitness);
  const HillClimbResult res = hill_climb(state, opt);
  EXPECT_GE(state.fitness(opt.fitness), before);
  EXPECT_NEAR(state.fitness(opt.fitness) - before, res.fitness_gain, 1e-9);
  EXPECT_GT(res.batch_rounds, 0);
  EXPECT_GE(res.batch_candidates, res.moves);
  expect_fixed_point(state, opt, "parallel frontier");

  // The maintained metrics still match a from-scratch recompute.
  const PartitionMetrics live = state.metrics();
  const PartitionMetrics fresh =
      compute_metrics(g, state.assignment(), c.k);
  EXPECT_EQ(live.sum_part_cut, fresh.sum_part_cut);
  EXPECT_EQ(live.max_part_cut, fresh.max_part_cut);
  // Cut sums are exact (integer weights); the incrementally maintained
  // imbalance accumulates against a non-integer mean load, so it matches
  // the fresh recompute only to rounding.
  EXPECT_NEAR(live.imbalance_sq, fresh.imbalance_sq, 1e-9);
}

TEST_P(ParallelRefineClimbFuzz, DeterministicAcrossThreadCounts) {
  const FuzzCase c = fuzz_case(GetParam());
  const Graph g = make_grid(c.n, c.n);
  const DamagedGrid d = damaged_block_grid(c.n, c.k, c.damage, c.seed);

  HillClimbOptions opt;
  opt.mode = HillClimbMode::kParallelFrontier;
  opt.fitness = c.fitness;
  opt.max_passes = 100;

  // Scores land indexed by worklist position and the apply is serial
  // ascending, so any pool width >= 2 (and any grain) yields one outcome.
  std::uint64_t reference_hash = 0;
  int reference_moves = -1;
  for (const int threads : {2, 4, 8}) {
    Executor pool(threads);
    opt.executor = &pool;
    opt.parallel_grain = threads == 8 ? 3 : 0;  // odd grain: still identical
    PartitionState state(g, d.start, c.k);
    const HillClimbResult res = hill_climb(state, opt);
    if (reference_moves < 0) {
      reference_hash = fnv1a(state.assignment());
      reference_moves = res.moves;
    } else {
      EXPECT_EQ(fnv1a(state.assignment()), reference_hash)
          << threads << " threads";
      EXPECT_EQ(res.moves, reference_moves) << threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelRefineClimbFuzz,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Seeded (damage-proportional) parallel repair and option validation.

TEST(ParallelRefineClimb, SeededRepairReachesVerifiedFixedPoint) {
  const Graph g = make_grid(24, 24);
  const DamagedGrid d = damaged_block_grid(24, 4, 20, 0x9e37);

  Executor pool(4);
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kParallelFrontier;
  opt.executor = &pool;
  opt.seed_vertices = d.damaged;
  opt.max_passes = 100;

  PartitionState state(g, d.start, 4);
  const double before = state.fitness(opt.fitness);
  const HillClimbResult res = hill_climb(state, opt);
  EXPECT_GE(state.fitness(opt.fitness), before);
  EXPECT_GE(res.verify_rounds, 1);  // a seeded climb owes a verification round
  expect_fixed_point(state, opt, "seeded parallel");
}

TEST(ParallelRefineClimb, RequiresPositiveMinGain) {
  const Graph g = make_grid(8, 8);
  Assignment a(static_cast<std::size_t>(g.num_vertices()), 0);
  for (VertexId v = 32; v < 64; ++v) a[static_cast<std::size_t>(v)] = 1;
  Executor pool(2);
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kParallelFrontier;
  opt.executor = &pool;
  opt.min_gain = 0.0;
  PartitionState state(g, a, 2);
  EXPECT_THROW(hill_climb(state, opt), std::exception);
}

}  // namespace
}  // namespace gapart
