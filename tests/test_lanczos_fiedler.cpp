#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "spectral/eigen.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/laplacian.hpp"

namespace gapart {
namespace {

TEST(Lanczos, PathLambda2Analytic) {
  const int n = 40;
  const Graph g = make_path(n);
  Rng rng(3);
  const auto res = fiedler_pair_lanczos(g, rng);
  EXPECT_TRUE(res.converged);
  const double expected =
      4.0 * std::pow(std::sin(std::numbers::pi / (2.0 * n)), 2);
  EXPECT_NEAR(res.pair.value, expected, 1e-7);
}

TEST(Lanczos, MatchesDenseOnRandomGraphs) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    Graph g = make_connected_geometric(60, 0.25, rng);
    const auto res = fiedler_pair_lanczos(g, rng);
    const auto ed = jacobi_eigen(dense_laplacian(g), 60);
    EXPECT_TRUE(res.converged) << "seed " << seed;
    EXPECT_NEAR(res.pair.value, ed.values[1], 1e-6) << "seed " << seed;
  }
}

TEST(Lanczos, VectorIsActuallyAnEigenvector) {
  Rng rng(7);
  const Graph g = make_grid(10, 10);
  const auto res = fiedler_pair_lanczos(g, rng);
  ASSERT_TRUE(res.converged);
  std::vector<double> y(res.pair.vector.size());
  apply_laplacian(g, res.pair.vector, y);
  axpy(-res.pair.value, res.pair.vector, y);
  EXPECT_LT(norm2(y), 1e-6);
}

TEST(Lanczos, VectorOrthogonalToOnes) {
  Rng rng(11);
  const Graph g = make_grid(8, 8);
  const auto res = fiedler_pair_lanczos(g, rng);
  double sum = 0.0;
  for (double v : res.pair.vector) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-8);
  EXPECT_NEAR(norm2(res.pair.vector), 1.0, 1e-10);
}

TEST(Lanczos, GridLambda2Analytic) {
  // For an r x c grid, lambda_2 = 4 sin^2(pi / (2*max(r,c))).
  const Graph g = make_grid(4, 12);
  Rng rng(13);
  const auto res = fiedler_pair_lanczos(g, rng);
  const double expected =
      4.0 * std::pow(std::sin(std::numbers::pi / 24.0), 2);
  EXPECT_NEAR(res.pair.value, expected, 1e-7);
}

TEST(Lanczos, TinyGraph) {
  const Graph g = make_path(2);
  Rng rng(17);
  const auto res = fiedler_pair_lanczos(g, rng);
  EXPECT_NEAR(res.pair.value, 2.0, 1e-9);  // P2: eigenvalues 0, 2
}

TEST(Lanczos, RequiresAtLeastTwoVertices) {
  const Graph g = make_path(1);
  Rng rng(1);
  EXPECT_THROW(fiedler_pair_lanczos(g, rng), Error);
}

TEST(Fiedler, DensePathMatchesAnalytic) {
  const int n = 24;
  Rng rng(19);
  const double lam = algebraic_connectivity(make_path(n), rng);
  EXPECT_NEAR(lam,
              4.0 * std::pow(std::sin(std::numbers::pi / (2.0 * n)), 2),
              1e-8);
}

TEST(Fiedler, DenseAndLanczosPathsAgree) {
  Rng rng(23);
  const Graph g = make_connected_geometric(120, 0.18, rng);
  FiedlerOptions dense_opt;
  dense_opt.dense_threshold = 200;  // force dense
  FiedlerOptions lanczos_opt;
  lanczos_opt.dense_threshold = 2;  // force Lanczos
  const double a = algebraic_connectivity(g, rng, dense_opt);
  const double b = algebraic_connectivity(g, rng, lanczos_opt);
  EXPECT_NEAR(a, b, 1e-6);
}

TEST(Fiedler, SignStructureSeparatesTwoCliques) {
  // The Fiedler vector of two cliques joined by one edge must separate the
  // cliques by sign.
  const Graph g = make_two_cliques(8);
  Rng rng(29);
  const auto f = fiedler_vector(g, rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_GT(f[static_cast<std::size_t>(i)] * f[0], 0.0) << i;
    EXPECT_LT(f[static_cast<std::size_t>(i + 8)] * f[0], 0.0) << i + 8;
  }
}

TEST(Fiedler, PathVectorMonotone) {
  // The Fiedler vector of a path is a sampled cosine: strictly monotone.
  const Graph g = make_path(16);
  Rng rng(31);
  auto f = fiedler_vector(g, rng);
  if (f.front() > f.back()) {
    for (auto& v : f) v = -v;
  }
  for (std::size_t i = 0; i + 1 < f.size(); ++i) {
    EXPECT_LT(f[i], f[i + 1]) << "position " << i;
  }
}

TEST(Fiedler, DisconnectedRejected) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  Rng rng(37);
  EXPECT_THROW(fiedler_vector(b.build(), rng), Error);
}

TEST(Fiedler, AlgebraicConnectivityOfCompleteGraph) {
  Rng rng(41);
  EXPECT_NEAR(algebraic_connectivity(make_complete(10), rng), 10.0, 1e-7);
}

TEST(Fiedler, MeshConvergesUnderLanczos) {
  const Mesh mesh = paper_mesh(309);
  Rng rng(43);
  FiedlerOptions opt;
  opt.dense_threshold = 8;  // force the Lanczos path on the full mesh
  const double lam = algebraic_connectivity(mesh.graph, rng, opt);
  EXPECT_GT(lam, 0.0);
  // Cross-check against the dense solver.
  const auto ed = jacobi_eigen(dense_laplacian(mesh.graph),
                               static_cast<int>(mesh.graph.num_vertices()));
  EXPECT_NEAR(lam, ed.values[1], 1e-5);
}

}  // namespace
}  // namespace gapart
