// The multilevel evolutionary engine (core/vcycle_ga.hpp): quotient-graph
// combine, V-cycle partition/refine, service routing, and the fixed-seed
// acceptance spot-check against a flat GA at equal wall-clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/ga_engine.hpp"
#include "core/graph_delta.hpp"
#include "core/init.hpp"
#include "core/presets.hpp"
#include "core/vcycle_ga.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "service/refine_policy.hpp"
#include "service/session.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GAPART_TEST_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GAPART_TEST_SANITIZED 1
#endif

namespace gapart {
namespace {

const FitnessParams kTotal{Objective::kTotalComm, 1.0};

CombineOptions small_combine() {
  CombineOptions co;
  co.population = 12;
  co.max_generations = 15;
  co.stall_generations = 5;
  return co;
}

VcycleGaOptions small_vcycle(PartId k) {
  VcycleGaOptions opt;
  opt.dpga = paper_dpga_config(k, Objective::kTotalComm);
  opt.dpga.num_islands = 4;
  opt.dpga.ga.population_size = 64;
  opt.dpga.ga.max_generations = 30;
  opt.dpga.ga.stall_generations = 8;
  opt.level_population = 16;
  opt.level_max_generations = 10;
  opt.level_stall = 3;
  opt.combine = small_combine();
  return opt;
}

TEST(VcycleCombine, ChildrenValidAndNeverBelowParents) {
  const Graph g = make_grid(12, 12);
  const PartId k = 3;
  Rng rng(3);
  const Assignment pa = random_balanced_assignment(g.num_vertices(), k, rng);
  const Assignment pb = random_balanced_assignment(g.num_vertices(), k, rng);
  const double fa = evaluate_fitness(g, pa, k, kTotal);
  const double fb = evaluate_fitness(g, pb, k, kTotal);

  Assignment c1, c2;
  Rng crng(9);
  combine_partitions(g, k, kTotal, small_combine(), pa, pb, crng, c1, c2);
  ASSERT_TRUE(is_valid_assignment(g, c1, k));
  ASSERT_TRUE(is_valid_assignment(g, c2, k));
  // child1 comes out of an elitist GA seeded with both parents, child2 is a
  // monotone climb of the better parent: neither drops below its origin.
  EXPECT_GE(evaluate_fitness(g, c1, k, kTotal), std::max(fa, fb) - 1e-9);
  EXPECT_GE(evaluate_fitness(g, c2, k, kTotal), std::min(fa, fb) - 1e-9);
}

TEST(VcycleCombine, FallbackOnOversizedQuotientStaysMonotone) {
  const Graph g = make_grid(10, 10);
  const PartId k = 2;
  Rng rng(5);
  const Assignment pa = random_balanced_assignment(g.num_vertices(), k, rng);
  const Assignment pb = random_balanced_assignment(g.num_vertices(), k, rng);
  CombineOptions co = small_combine();
  co.max_quotient_vertices = 1;  // force the climb fallback

  Assignment c1, c2;
  Rng crng(7);
  combine_partitions(g, k, kTotal, co, pa, pb, crng, c1, c2);
  ASSERT_TRUE(is_valid_assignment(g, c1, k));
  ASSERT_TRUE(is_valid_assignment(g, c2, k));
  const double fa = evaluate_fitness(g, pa, k, kTotal);
  const double fb = evaluate_fitness(g, pb, k, kTotal);
  EXPECT_GE(evaluate_fitness(g, c1, k, kTotal), std::max(fa, fb) - 1e-9);
  EXPECT_GE(evaluate_fitness(g, c2, k, kTotal), std::min(fa, fb) - 1e-9);
}

TEST(VcycleCombine, EngineDispatchesCombineCrossover) {
  const Graph g = make_grid(8, 8);
  const PartId k = 2;
  GaConfig cfg;
  cfg.num_parts = k;
  cfg.population_size = 8;
  cfg.elite_count = 1;
  cfg.max_generations = 3;
  cfg.crossover = CrossoverOp::kCombine;
  CombineOptions co = small_combine();
  co.max_generations = 5;
  cfg.combine = make_quotient_combine(g, k, cfg.fitness, co);
  Rng rng(13);
  auto initial = make_random_population(g.num_vertices(), k, 8, rng);
  const GaResult res = run_ga(g, cfg, std::move(initial), rng.split());
  EXPECT_EQ(res.generations, 3);
  EXPECT_TRUE(is_valid_assignment(g, res.best, k));
}

TEST(VcycleCombine, EngineRejectsMissingCombineCallback) {
  const Graph g = make_grid(4, 4);
  GaConfig cfg;
  cfg.population_size = 4;
  cfg.crossover = CrossoverOp::kCombine;  // cfg.combine left null
  Rng rng(1);
  auto initial = make_random_population(g.num_vertices(), 2, 4, rng);
  EXPECT_THROW(GaEngine(g, cfg, std::move(initial), rng), Error);
}

TEST(VcycleCombine, ApplyCrossoverRefusesCombine) {
  CrossoverContext ctx;
  Assignment a{0, 1}, b{1, 0}, c1, c2;
  Rng rng(2);
  EXPECT_THROW(
      apply_crossover(CrossoverOp::kCombine, ctx, a, b, rng, c1, c2), Error);
  EXPECT_EQ(parse_crossover("combine"), CrossoverOp::kCombine);
  EXPECT_STREQ(crossover_name(CrossoverOp::kCombine), "combine");
}

TEST(Vcycle, PartitionValidAndBalancedOnGrid) {
  const Graph g = make_grid(24, 24);
  const PartId k = 4;
  VcycleGaOptions opt = small_vcycle(k);
  Rng rng(17);
  const VcycleGaResult res = vcycle_ga_partition(g, opt, rng);
  ASSERT_TRUE(is_valid_assignment(g, res.assignment, k));
  EXPECT_GE(res.levels, 1);
  EXPECT_GE(res.evolved_levels, 1);
  EXPECT_LE(res.coarsest_vertices, 2 * k * opt.coarse_vertices_per_part);
  EXPECT_EQ(static_cast<int>(res.level_reports.size()), res.levels);
  const double mean =
      g.total_vertex_weight() / static_cast<double>(k);
  for (PartId q = 0; q < k; ++q) {
    EXPECT_NEAR(res.metrics.part_weight[static_cast<std::size_t>(q)], mean,
                0.15 * mean);
  }
  EXPECT_GT(res.metrics.total_cut(), 0.0);
  // Every level report is monotone: refinement never loses fitness.
  for (const auto& r : res.level_reports) {
    EXPECT_GE(r.fitness_after, r.fitness_before - 1e-9);
  }
}

TEST(Vcycle, DeterministicAcrossRunsAndExecutors) {
  const Graph g = make_grid(20, 20);
  const PartId k = 4;
  const VcycleGaOptions opt = small_vcycle(k);
  Rng r1(29), r2(29), r3(29);
  const auto a = vcycle_ga_partition(g, opt, r1);
  const auto b = vcycle_ga_partition(g, opt, r2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
  // Pooled evaluation is bit-identical to serial (fork-per-child streams).
  Executor pool(4);
  const auto c = vcycle_ga_partition(g, opt, r3, &pool);
  EXPECT_EQ(a.assignment, c.assignment);
}

TEST(Vcycle, RefineNeverWorseThanSeed) {
  const Graph g = make_grid(40, 40);
  const PartId k = 4;
  // Deliberately poor but balanced seed: round-robin stripes cut almost
  // every horizontal edge.
  Assignment seed(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    seed[static_cast<std::size_t>(v)] = static_cast<PartId>(v % k);
  }
  const double seed_fitness = evaluate_fitness(g, seed, k, kTotal);

  VcycleGaOptions opt = small_vcycle(k);
  Rng rng(31);
  const VcycleGaResult res = vcycle_ga_refine(g, seed, opt, rng);
  ASSERT_TRUE(is_valid_assignment(g, res.assignment, k));
  EXPECT_GE(res.fitness, seed_fitness);
  // The stripe seed is so bad the V-cycle must strictly improve it.
  EXPECT_LT(res.metrics.total_cut(),
            compute_metrics(g, seed, k).total_cut());
}

TEST(Vcycle, RefineWithCancelledTokenStillMonotoneAndValid) {
  const Graph g = make_grid(16, 16);
  const PartId k = 2;
  Rng rng(37);
  Assignment seed(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    seed[static_cast<std::size_t>(v)] = (v % 16) < 8 ? 0 : 1;
  }
  const double seed_fitness = evaluate_fitness(g, seed, k, kTotal);
  std::atomic<bool> cancel{true};
  VcycleGaOptions opt = small_vcycle(k);
  opt.cancel = &cancel;
  const VcycleGaResult res = vcycle_ga_refine(g, seed, opt, rng);
  ASSERT_TRUE(is_valid_assignment(g, res.assignment, k));
  EXPECT_GE(res.fitness, seed_fitness);
}

TEST(Vcycle, ProjectAssignmentRoundTripsThroughGrowAndRewireDeltas) {
  Rng rng(11);
  const Graph old_g = make_grid(10, 10);
  Assignment part(static_cast<std::size_t>(old_g.num_vertices()));
  for (VertexId v = 0; v < old_g.num_vertices(); ++v) {
    part[static_cast<std::size_t>(v)] = (v % 10) < 5 ? 0 : 1;
  }

  auto copy_into = [](const Graph& src, GraphBuilder& b) {
    for (VertexId v = 0; v < src.num_vertices(); ++v) {
      b.set_vertex_weight(v, src.vertex_weight(v));
      if (src.has_coordinates()) b.set_coordinate(v, src.coordinate(v));
      const auto nbrs = src.neighbors(v);
      const auto wgts = src.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (v < nbrs[i]) b.add_edge(v, nbrs[i], wgts[i]);
      }
    }
  };

  // Grow: ten appended vertices, each tied to two survivors.
  GraphBuilder gb(old_g.num_vertices() + 10);
  copy_into(old_g, gb);
  for (VertexId nv = old_g.num_vertices(); nv < old_g.num_vertices() + 10;
       ++nv) {
    gb.add_edge(nv, (nv * 7) % old_g.num_vertices(), 1.0);
    gb.add_edge(nv, (nv * 13) % old_g.num_vertices(), 1.0);
    if (old_g.has_coordinates()) gb.set_coordinate(nv, {0.0, 0.0});
  }
  const Graph grown = gb.build();
  const GraphDelta grow_delta = diff_graphs(old_g, grown);
  EXPECT_EQ(grow_delta.old_num_vertices, old_g.num_vertices());
  EXPECT_EQ(grow_delta.num_new(grown), 10);

  const Assignment extended =
      incremental_seed_assignment(grown, part, 2, rng);
  const auto round_trip = [&rng](const Graph& g, const Assignment& a) {
    auto rng_copy = rng;  // independent stream per round trip
    const auto h = coarsen_to(g, 12, rng_copy, &a);
    Assignment coarse(
        static_cast<std::size_t>(h.coarsest(g).num_vertices()));
    const auto flat = h.flatten_map(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      coarse[static_cast<std::size_t>(flat[static_cast<std::size_t>(v)])] =
          a[static_cast<std::size_t>(v)];
    }
    return h.project_to_finest(coarse, g.num_vertices());
  };
  // Respect-coarsening makes the assignment cluster-constant at every
  // level, so coarsen -> project is the identity on it.
  EXPECT_EQ(round_trip(grown, extended), extended);

  // Rewire: bump one surviving edge's weight; the delta lists exactly the
  // two endpoints, and the round trip still holds on the rewired graph.
  GraphBuilder rb(grown.num_vertices());
  for (VertexId v = 0; v < grown.num_vertices(); ++v) {
    rb.set_vertex_weight(v, grown.vertex_weight(v));
    if (grown.has_coordinates()) rb.set_coordinate(v, grown.coordinate(v));
    const auto nbrs = grown.neighbors(v);
    const auto wgts = grown.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (v < nbrs[i]) {
        const bool bumped = v == 0 && nbrs[i] == 1;
        rb.add_edge(v, nbrs[i], bumped ? 5.0 : wgts[i]);
      }
    }
  }
  const Graph rewired = rb.build();
  const GraphDelta rewire_delta = diff_graphs(grown, rewired);
  EXPECT_EQ(rewire_delta.num_new(rewired), 0);
  EXPECT_EQ(rewire_delta.touched_old, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(round_trip(rewired, extended), extended);
}

TEST(VcycleRoute, DeepVcyclePolicyIsPureAndGated) {
  RefinePolicyConfig config;
  config.vcycle_min_vertices = 1000;
  EXPECT_FALSE(route_deep_vcycle(config, 999));
  EXPECT_TRUE(route_deep_vcycle(config, 1000));
  EXPECT_TRUE(route_deep_vcycle(config, 1 << 20));
  config.vcycle_min_vertices = 0;  // disabled
  EXPECT_FALSE(route_deep_vcycle(config, 1 << 20));
}

TEST(VcycleService, RunRefinementRoutesDeepThroughVcycle) {
  const auto graph = std::make_shared<const Graph>(make_grid(30, 30));
  const PartId k = 2;
  Rng rng(43);
  Assignment seed(static_cast<std::size_t>(graph->num_vertices()));
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    seed[static_cast<std::size_t>(v)] = static_cast<PartId>(v % k);
  }

  SessionConfig config;
  config.num_parts = k;
  config.policy.vcycle_min_vertices = 1;  // route every kDeep to the V-cycle
  config.deep_vcycle = small_vcycle(k);

  PartitionSession::RefineJob job;
  job.depth = RefineDepth::kDeep;
  job.graph = graph;
  job.assignment = seed;
  job.fitness = evaluate_fitness(*graph, seed, k, config.fitness);
  job.cancel = std::make_shared<std::atomic<bool>>(false);

  const RefineOutcome out = run_refinement(job, config, Rng(5), nullptr);
  ASSERT_TRUE(is_valid_assignment(*graph, out.assignment, k));
  EXPECT_GE(out.fitness, job.fitness);
  EXPECT_GT(out.full_evaluations, 0);

  // With routing disabled the flat DPGA burst still serves the deep tier.
  config.policy.vcycle_min_vertices = 0;
  const RefineOutcome flat = run_refinement(job, config, Rng(5), nullptr);
  ASSERT_TRUE(is_valid_assignment(*graph, flat.assignment, k));
  EXPECT_GE(flat.fitness, job.fitness);
}

TEST(Vcycle, BeatsFlatGaAtEqualWallclockOn512Mesh) {
#ifdef GAPART_TEST_SANITIZED
  GTEST_SKIP() << "512^2 acceptance spot-check runs in optimized builds only";
#else
  const Graph g = make_grid(512, 512);
  const PartId k = 8;
  VcycleGaOptions opt;
  opt.dpga = paper_dpga_config(k, Objective::kTotalComm);
  opt.dpga.ga.max_generations = 60;
  opt.dpga.ga.stall_generations = 12;
  opt.max_evolve_vertices = 4096;
  opt.level_population = 24;
  opt.level_max_generations = 15;
  opt.level_stall = 4;
  Rng rng(2026);
  const VcycleGaResult res = vcycle_ga_partition(g, opt, rng);
  ASSERT_TRUE(is_valid_assignment(g, res.assignment, k));

  // The flat GA gets at least the V-cycle's wall-clock on the same mesh.
  const double budget = std::max(res.wall_seconds, 1.0);
  GaConfig flat = paper_ga_config(k, Objective::kTotalComm);
  flat.population_size = 64;  // fewer, cheaper generations at this |V|
  flat.hill_climb_offspring = true;
  Rng frng(2026);
  auto initial =
      make_random_population(g.num_vertices(), k, flat.population_size, frng);
  GaEngine engine(g, flat, std::move(initial), frng.split());
  WallTimer timer;
  while (timer.seconds() < budget) engine.step();
  const double flat_cut = engine.best().metrics.total_cut();
  EXPECT_LT(res.metrics.total_cut(), flat_cut)
      << "vcycle " << res.metrics.total_cut() << " vs flat " << flat_cut
      << " after " << engine.generation() << " flat generations in "
      << budget << "s";
#endif
}

}  // namespace
}  // namespace gapart
