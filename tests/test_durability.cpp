// Durability end-to-end: crash recovery (kill-point fuzz against a
// never-crashed reference, torn tails, stale snapshot prefixes, mid-log
// corruption), the fault-injection storm ("no acknowledged delta is ever
// lost"), fail-stop on exhausted WAL retries, the overload ladder, and the
// close/drain handshake.  Companion suites: test_wal.cpp (log mechanics),
// test_fault_injection.cpp (the injector itself).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/assert.hpp"
#include "common/fault_injection.hpp"
#include "core/graph_delta.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"
#include "graph/partition.hpp"
#include "service/service.hpp"
#include "service/wal.hpp"

namespace gapart {
namespace {

namespace fs = std::filesystem;
using bench::column_bands;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      std::string(::testing::TempDir()) + "/gapart_dur_" + name;
  fs::remove_all(dir);
  return dir;
}

std::shared_ptr<const Graph> shared_grid(VertexId rows, VertexId cols) {
  return std::make_shared<const Graph>(make_grid(rows, cols));
}

/// Session knobs for deterministic replay comparisons: a budget far beyond
/// any real round cost means the wall clock never gates verification — the
/// admitted round count is then a pure function of the delta stream (the
/// moves == 0 early break), so a never-crashed run and a killed-and-recovered
/// run are comparable bit-for-bit.
SessionConfig session_config(PartId k) {
  SessionConfig cfg;
  cfg.num_parts = k;
  cfg.repair_budget_seconds = 60.0;
  return cfg;
}

ServiceConfig durable_config(const std::string& dir) {
  ServiceConfig sc;
  sc.num_threads = 2;
  sc.background_refinement = false;  // replay determinism: deltas only
  sc.durability.dir = dir;
  return sc;
}

void expect_snapshot_consistent(const SessionSnapshot& snap, PartId k) {
  ASSERT_NE(snap.graph, nullptr);
  ASSERT_TRUE(is_valid_assignment(*snap.graph, snap.assignment, k));
  const auto m = compute_metrics(*snap.graph, snap.assignment, k);
  EXPECT_NEAR(snap.total_cut, m.total_cut(), 1e-9);
}

// ---------------------------------------------------------------------------
// Recovery: snapshot + replay reproduces the live session exactly.

TEST(Durability, DurableSessionRecoversExactly) {
  const PartId k = 3;
  const std::string dir = fresh_dir("exact");
  auto prev = shared_grid(12, 12);

  SessionSnapshot live;
  {
    PartitionService service(durable_config(dir));
    const SessionId id = service.open_session(prev, column_bands(12, 12, k),
                                              session_config(k));
    ASSERT_EQ(id, 1u);
    for (VertexId rows = 13; rows <= 18; ++rows) {
      auto next = shared_grid(rows, 12);
      service.submit_update(id, next, diff_graphs(*prev, *next));
      prev = next;
    }
    const SessionStats st = service.session_stats(id);
    EXPECT_TRUE(st.durable);
    EXPECT_FALSE(st.wal_failed);
    EXPECT_EQ(st.wal.appends, 6u);
    EXPECT_GE(st.wal.fsyncs, 6u);  // default policy: fsync per record
    live = *service.snapshot(id);
  }  // "crash": the service goes away without any orderly close

  PartitionService service(durable_config(dir));
  const auto reports = service.recover(session_config(k));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].session_id, 1u);
  EXPECT_EQ(reports[0].snapshot_epoch, 0u);
  EXPECT_EQ(reports[0].final_epoch, 6u);
  EXPECT_EQ(reports[0].records_replayed, 6u);
  EXPECT_FALSE(reports[0].torn_tail);

  const auto snap = service.snapshot(1);
  EXPECT_EQ(snap->update_epoch, 6u);
  EXPECT_EQ(snap->assignment, live.assignment);
  EXPECT_DOUBLE_EQ(snap->fitness, live.fitness);
  expect_snapshot_consistent(*snap, k);

  const ServiceStats ss = service.stats();
  EXPECT_EQ(ss.durable_sessions, 1);
  EXPECT_EQ(ss.failed_sessions, 0);

  // The recovered session is live: it keeps absorbing (and logging) deltas.
  auto next = shared_grid(19, 12);
  const RepairReport rep =
      service.submit_update(1, next, diff_graphs(*prev, *next));
  EXPECT_EQ(rep.update_epoch, 7u);
}

TEST(Durability, RecoveryReplaysCompactedLog) {
  const PartId k = 3;
  const std::string dir = fresh_dir("compacted");
  ServiceConfig sc = durable_config(dir);
  sc.durability.compaction.damage_threshold = 1;  // every delta is "damage"
  sc.durability.compaction.min_records = 2;       // ... so compact every 2

  auto prev = shared_grid(12, 12);
  SessionSnapshot live;
  {
    PartitionService service(sc);
    const SessionId id = service.open_session(prev, column_bands(12, 12, k),
                                              session_config(k));
    for (VertexId rows = 13; rows <= 19; ++rows) {
      auto next = shared_grid(rows, 12);
      service.submit_update(id, next, diff_graphs(*prev, *next));
      prev = next;
    }
    const SessionStats st = service.session_stats(id);
    EXPECT_GE(st.wal.compactions, 2u);
    EXPECT_GE(st.wal.snapshot_epoch, 4u);
    live = *service.snapshot(id);
  }

  PartitionService service(sc);
  const auto reports = service.recover(session_config(k));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GE(reports[0].snapshot_epoch, 4u);
  EXPECT_LE(reports[0].records_replayed, 3u);  // only the post-snapshot tail
  EXPECT_EQ(reports[0].final_epoch, 7u);
  EXPECT_EQ(service.snapshot(1)->assignment, live.assignment);
}

TEST(Durability, TornTailRecoversToLastDurableEpoch) {
  const PartId k = 3;
  const std::string dir = fresh_dir("torn");
  auto prev = shared_grid(12, 12);
  std::vector<Assignment> at_epoch(1);  // [0] unused
  {
    PartitionService service(durable_config(dir));
    const SessionId id = service.open_session(prev, column_bands(12, 12, k),
                                              session_config(k));
    for (VertexId rows = 13; rows <= 17; ++rows) {
      auto next = shared_grid(rows, 12);
      service.submit_update(id, next, diff_graphs(*prev, *next));
      at_epoch.push_back(service.snapshot(id)->assignment);
      prev = next;
    }
  }

  // Tear the final record: the crash hit mid-append, after the bytes for
  // epochs 1..4 were already durable.
  const std::string log = dir + "/session-1/wal.log";
  const auto size = fs::file_size(log);
  fs::resize_file(log, size - 3);

  PartitionService service(durable_config(dir));
  const auto reports = service.recover(session_config(k));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].torn_tail);
  EXPECT_EQ(reports[0].final_epoch, 4u);
  EXPECT_EQ(service.snapshot(1)->assignment, at_epoch[4]);
}

TEST(Durability, StaleLogPrefixSkipped) {
  // Forge the one crash window compaction leaves open: CURRENT already
  // renamed to the new snapshot, the log not yet truncated.  Replay must
  // skip the records the snapshot already covers.
  const PartId k = 3;
  const std::string dir = fresh_dir("stale_prefix");
  auto prev = shared_grid(12, 12);
  SessionSnapshot live;
  {
    PartitionService service(durable_config(dir));
    const SessionId id = service.open_session(prev, column_bands(12, 12, k),
                                              session_config(k));
    for (VertexId rows = 13; rows <= 17; ++rows) {
      auto next = shared_grid(rows, 12);
      service.submit_update(id, next, diff_graphs(*prev, *next));
      prev = next;
      if (rows == 14) {
        // Epoch-2 state, written in exactly the snapshot file formats.
        service.save_session(id, dir + "/session-1/snap-2");
      }
    }
    live = *service.snapshot(id);
  }
  {
    std::ofstream cur(dir + "/session-1/CURRENT", std::ios::trunc);
    cur << "2\n";
  }

  PartitionService service(durable_config(dir));
  const auto reports = service.recover(session_config(k));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].snapshot_epoch, 2u);
  EXPECT_EQ(reports[0].records_replayed, 3u);  // epochs 3..5 only
  EXPECT_EQ(reports[0].final_epoch, 5u);
  EXPECT_EQ(service.snapshot(1)->assignment, live.assignment);
}

TEST(Durability, CorruptMidLogFailsRecovery) {
  const PartId k = 3;
  const std::string dir = fresh_dir("corrupt");
  auto prev = shared_grid(12, 12);
  {
    PartitionService service(durable_config(dir));
    const SessionId id = service.open_session(prev, column_bands(12, 12, k),
                                              session_config(k));
    for (VertexId rows = 13; rows <= 16; ++rows) {
      auto next = shared_grid(rows, 12);
      service.submit_update(id, next, diff_graphs(*prev, *next));
      prev = next;
    }
  }

  // Flip one payload byte of the FIRST record: valid records follow, so this
  // is silent-corruption, not a torn tail — recovery must refuse.
  const std::string log = dir + "/session-1/wal.log";
  std::fstream f(log, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(8 + 25 + 2);  // file header + first frame header + 2
  char byte = 0;
  f.get(byte);
  f.seekp(8 + 25 + 2);
  f.put(static_cast<char>(byte ^ 0x5a));
  f.close();

  PartitionService service(durable_config(dir));
  EXPECT_THROW(service.recover(session_config(k)), WalCorruptError);
}

// ---------------------------------------------------------------------------
// Kill-point fuzz: for every prefix length p of a growth + churn trace, kill
// after p acknowledged deltas and recover — the recovered partition must
// equal the never-crashed reference at epoch p, and finishing the remaining
// trace must land on the reference's final state.

/// Step s of the trace: an 8-column grid that gains a row every other step
/// and toggles a diagonal window on odd steps (growth + churn mixed).
std::shared_ptr<const Graph> trace_graph(int step) {
  const VertexId cols = 8;
  const VertexId rows = 8 + static_cast<VertexId>((step + 1) / 2);
  GraphBuilder b(rows * cols);
  const auto at = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  if (step % 2 == 1) {
    for (VertexId r = 2; r < 6; ++r) {
      for (VertexId c = 2; c < 6; ++c) b.add_edge(at(r, c), at(r + 1, c + 1));
    }
  }
  return std::make_shared<const Graph>(b.build());
}

TEST(Durability, KillPointFuzzMatchesReference) {
  const PartId k = 3;
  const int kSteps = 6;

  // Never-crashed reference: one durable run over the whole trace, the
  // assignment captured at every epoch.
  std::vector<Assignment> reference(1);
  {
    const std::string dir = fresh_dir("fuzz_ref");
    PartitionService service(durable_config(dir));
    auto prev = trace_graph(0);
    const SessionId id = service.open_session(prev, column_bands(8, 8, k),
                                              session_config(k));
    for (int s = 1; s <= kSteps; ++s) {
      auto next = trace_graph(s);
      service.submit_update(id, next, diff_graphs(*prev, *next));
      reference.push_back(service.snapshot(id)->assignment);
      prev = next;
    }
  }

  for (int p = 1; p <= kSteps; ++p) {
    const std::string dir = fresh_dir("fuzz_p" + std::to_string(p));
    auto prev = trace_graph(0);
    {
      PartitionService service(durable_config(dir));
      const SessionId id = service.open_session(prev, column_bands(8, 8, k),
                                                session_config(k));
      for (int s = 1; s <= p; ++s) {
        auto next = trace_graph(s);
        service.submit_update(id, next, diff_graphs(*prev, *next));
        prev = next;
      }
    }  // kill

    PartitionService service(durable_config(dir));
    const auto reports = service.recover(session_config(k));
    ASSERT_EQ(reports.size(), 1u);
    EXPECT_EQ(reports[0].final_epoch, static_cast<std::uint64_t>(p));
    EXPECT_EQ(service.snapshot(1)->assignment, reference[p])
        << "kill point " << p;

    // The recovered session finishes the trace identically to the
    // reference: recovery left no hidden divergence behind.
    for (int s = p + 1; s <= kSteps; ++s) {
      auto next = trace_graph(s);
      service.submit_update(1, next, diff_graphs(*prev, *next));
      prev = next;
    }
    EXPECT_EQ(service.snapshot(1)->assignment, reference[kSteps])
        << "kill point " << p;
  }

  // Torn variant: kill mid-append of record p — recovery lands on p-1.
  const int p = 4;
  const std::string dir = fresh_dir("fuzz_torn");
  {
    PartitionService service(durable_config(dir));
    auto prev = trace_graph(0);
    const SessionId id = service.open_session(prev, column_bands(8, 8, k),
                                              session_config(k));
    for (int s = 1; s <= p; ++s) {
      auto next = trace_graph(s);
      service.submit_update(id, next, diff_graphs(*prev, *next));
      prev = next;
    }
  }
  const std::string log = dir + "/session-1/wal.log";
  fs::resize_file(log, fs::file_size(log) - 3);
  PartitionService service(durable_config(dir));
  const auto reports = service.recover(session_config(k));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].torn_tail);
  EXPECT_EQ(reports[0].final_epoch, static_cast<std::uint64_t>(p - 1));
  EXPECT_EQ(service.snapshot(1)->assignment, reference[p - 1]);
}

// ---------------------------------------------------------------------------
// Fault storms (compiled seam required).

#if GAPART_FAULT_INJECTION

TEST(Durability, FaultStormLosesNoAckedDelta) {
  const PartId k = 3;
  const std::string dir = fresh_dir("storm");
  ServiceConfig sc = durable_config(dir);
  sc.durability.io_retry.max_attempts = 12;
  sc.durability.io_retry.initial_seconds = 1e-6;
  sc.durability.io_retry.max_seconds = 1e-5;
  sc.durability.compaction.damage_threshold = 1;  // compact under fire too
  sc.durability.compaction.min_records = 2;

  std::uint64_t acked_epoch = 0;
  Assignment acked;
  {
    PartitionService service(sc);
    auto prev = shared_grid(12, 12);
    const SessionId id = service.open_session(prev, column_bands(12, 12, k),
                                              session_config(k));
    // 10% of every WAL write, fsync, snapshot write, and delta allocation
    // fails (deterministic schedule).  Transient failures must be retried
    // invisibly; pre-mutation failures surface and the client retries.
    ScopedFaultInjection scope(/*seed=*/2026, /*probability=*/0.10);
    for (VertexId rows = 13; rows <= 24; ++rows) {
      auto next = shared_grid(rows, 12);
      const GraphDelta delta = diff_graphs(*prev, *next);
      for (;;) {
        try {
          const RepairReport rep = service.submit_update(id, next, delta);
          acked_epoch = rep.update_epoch;
          break;
        } catch (const std::bad_alloc&) {
          // Injected before any mutation: the delta is simply resubmitted.
        }
      }
      acked = service.snapshot(id)->assignment;
      prev = next;
    }
    EXPECT_EQ(acked_epoch, 12u);
    EXPECT_GT(FaultInjector::instance().total_injected(), 0u);
    const SessionStats st = service.session_stats(id);
    EXPECT_FALSE(st.wal_failed);
    EXPECT_EQ(st.wal.appends, 12u);
  }  // scope disarms, then the service dies without a close

  PartitionService service(sc);
  const auto reports = service.recover(session_config(k));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].final_epoch, acked_epoch);
  EXPECT_FALSE(reports[0].torn_tail);
  EXPECT_EQ(service.snapshot(1)->assignment, acked);
}

TEST(Durability, FailStopAfterExhaustedAppendRetries) {
  const PartId k = 3;
  const std::string dir = fresh_dir("failstop");
  ServiceConfig sc = durable_config(dir);
  sc.durability.io_retry.max_attempts = 1;  // no retries: first fault is fatal

  PartitionService service(sc);
  auto g = shared_grid(12, 12);
  const SessionId id =
      service.open_session(g, column_bands(12, 12, k), session_config(k));
  auto grown = shared_grid(13, 12);
  const GraphDelta delta = diff_graphs(*g, *grown);
  {
    ScopedFaultInjection scope(FaultSite::kWalAppend, /*nth=*/1);
    EXPECT_THROW(service.submit_update(id, grown, delta), IoError);
  }

  // The repair ran but was never acknowledged: the published snapshot must
  // still be the pre-update state (exactly what recovery will rebuild).
  EXPECT_EQ(service.snapshot(id)->update_epoch, 0u);
  const SessionStats st = service.session_stats(id);
  EXPECT_TRUE(st.wal_failed);
  EXPECT_EQ(service.stats().failed_sessions, 1);

  // Fail-stop: the session refuses to diverge further from its log.
  EXPECT_THROW(service.submit_update(id, grown, delta), Error);
}

TEST(Durability, TaskStartFaultAbandonsCleanly) {
  const PartId k = 3;
  ServiceConfig sc;
  sc.num_threads = 2;
  SessionConfig cfg = session_config(k);
  cfg.policy.staleness_updates = 1;  // every update wants a refinement
  cfg.policy.allow_deep = false;

  PartitionService service(sc);
  auto g = shared_grid(12, 12);
  const SessionId id = service.open_session(g, column_bands(12, 12, k), cfg);
  auto grown = shared_grid(13, 12);
  {
    ScopedFaultInjection scope(FaultSite::kTaskStart, /*nth=*/1);
    service.submit_update(id, grown, diff_graphs(*g, *grown));
  }
  service.quiesce();
  ServiceStats ss = service.stats();
  EXPECT_EQ(ss.refine_start_failures, 1);
  EXPECT_EQ(ss.refinements_planned, 1);

  // The abandoned plan left the accumulators primed: the next poll retries.
  service.poll();
  service.quiesce();
  ss = service.stats();
  EXPECT_EQ(ss.refinements_planned, 2);
  EXPECT_EQ(ss.refine_start_failures, 1);
}

#else  // !GAPART_FAULT_INJECTION

TEST(Durability, FaultStormLosesNoAckedDelta) {
  GTEST_SKIP() << "built without GAPART_FAULT_INJECTION";
}
TEST(Durability, FailStopAfterExhaustedAppendRetries) {
  GTEST_SKIP() << "built without GAPART_FAULT_INJECTION";
}
TEST(Durability, TaskStartFaultAbandonsCleanly) {
  GTEST_SKIP() << "built without GAPART_FAULT_INJECTION";
}

#endif  // GAPART_FAULT_INJECTION

// ---------------------------------------------------------------------------
// Graceful degradation + teardown.

TEST(Durability, ShedAndDeferUnderBacklog) {
  const PartId k = 3;
  ServiceConfig sc;
  sc.num_threads = 2;  // exactly one pool worker to occupy
  sc.overload.shed_verification_backlog = 1;
  sc.overload.defer_refinement_backlog = 1;
  SessionConfig cfg = session_config(k);
  cfg.policy.staleness_updates = 1;

  PartitionService service(sc);
  auto g = shared_grid(12, 12);
  const SessionId id = service.open_session(g, column_bands(12, 12, k), cfg);

  // Occupy the pool: backlog >= 1 until released.
  std::atomic<bool> release{false};
  service.executor().submit([&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  auto g13 = shared_grid(13, 12);
  const RepairReport shed =
      service.submit_update(id, g13, diff_graphs(*g, *g13));
  EXPECT_EQ(shed.verify_rounds, 0);  // budget says >= 1; overload shed them
  ServiceStats ss = service.stats();
  EXPECT_EQ(ss.verifications_shed, 1);
  EXPECT_EQ(ss.refinements_deferred, 1);  // staleness fired, pool too deep
  EXPECT_EQ(ss.refinements_planned, 0);

  release.store(true, std::memory_order_release);
  service.quiesce();

  // Pressure gone: the full pipeline is back.
  auto g14 = shared_grid(14, 12);
  const RepairReport full =
      service.submit_update(id, g14, diff_graphs(*g13, *g14));
  EXPECT_GE(full.verify_rounds, 1);
  service.quiesce();
  EXPECT_EQ(service.stats().verifications_shed, 1);
}

TEST(Durability, RejectWithBackpressureAtInflightCap) {
  // Every submit counts itself against max_inflight_repairs, so a cap of 1
  // admits a solo caller and rejects whoever overlaps one.  Overlap a slow
  // repair (big session) with a fast client retrying try_submit_update —
  // the documented backpressure protocol.  The overlap window is timing-
  // dependent, so the assertions hold whether or not a rejection landed:
  // every rejection is counted, nothing is lost, nothing applies twice.
  const PartId k = 3;
  ServiceConfig sc;
  sc.num_threads = 2;
  sc.background_refinement = false;
  sc.overload.max_inflight_repairs = 1;

  PartitionService service(sc);
  auto big = shared_grid(64, 64);
  auto small = shared_grid(12, 12);
  const SessionId a =
      service.open_session(big, column_bands(64, 64, k), session_config(k));
  const SessionId b =
      service.open_session(small, column_bands(12, 12, k), session_config(k));

  // A solo submit is at the cap, not over it: admitted.
  auto small13 = shared_grid(13, 12);
  EXPECT_NO_THROW(service.submit_update(b, small13, diff_graphs(*small, *small13)));

  auto big65 = shared_grid(65, 64);
  const GraphDelta big_delta = diff_graphs(*big, *big65);
  std::atomic<int> rejections{0};
  std::thread slow([&] {
    // The big session's client also obeys the protocol — it could lose the
    // admission race to the fast client's first attempt.
    while (!service.try_submit_update(a, big65, big_delta)) {
      rejections.fetch_add(1, std::memory_order_relaxed);
    }
  });

  auto small14 = shared_grid(14, 12);
  const GraphDelta small_delta = diff_graphs(*small13, *small14);
  while (!service.try_submit_update(b, small14, small_delta)) {
    rejections.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  slow.join();

  EXPECT_EQ(service.stats().updates_rejected,
            rejections.load(std::memory_order_relaxed));
  EXPECT_EQ(service.snapshot(a)->update_epoch, 1u);
  EXPECT_EQ(service.snapshot(b)->update_epoch, 2u);
}

TEST(Durability, CloseSessionDrainsInflightRefinement) {
  // TSan target: open / submit (schedules refinement) / immediately close,
  // with a stats scraper racing the whole time.  close_session must cancel
  // and drain the job — no use-after-free, no deadlock, no leaked session.
  const PartId k = 4;
  ServiceConfig sc;
  sc.num_threads = 4;
  SessionConfig cfg = session_config(k);
  cfg.policy.staleness_updates = 1;
  cfg.policy.allow_deep = false;
  cfg.refine_hill_climb_passes = 64;  // long enough that close interrupts it

  PartitionService service(sc);
  auto g = shared_grid(20, 20);
  auto grown = shared_grid(21, 20);
  const GraphDelta delta = diff_graphs(*g, *grown);
  const Assignment initial = column_bands(20, 20, k);

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)service.stats();
      (void)service.num_sessions();
    }
  });
  for (int i = 0; i < 8; ++i) {
    const SessionId id = service.open_session(g, initial, cfg);
    service.submit_update(id, grown, delta);
    service.close_session(id);
  }
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_EQ(service.num_sessions(), 0);
}

// ---------------------------------------------------------------------------
// Checkpoint IO error contract (the WAL trusts these writers).

#if GAPART_FAULT_INJECTION
TEST(DurabilityIo, WriterFaultSurfacesAsIoError) {
  const std::string path = fresh_dir("iowrite") + ".graph";
  const Graph g = make_grid(4, 4);
  {
    ScopedFaultInjection scope(FaultSite::kFileWrite, /*nth=*/1);
    EXPECT_THROW(write_graph_file(path, g), IoError);
  }
  // Disarmed, the same write succeeds and round-trips.
  write_graph_file(path, g);
  EXPECT_EQ(read_graph_file(path).num_vertices(), 16);
}
#else
TEST(DurabilityIo, WriterFaultSurfacesAsIoError) {
  GTEST_SKIP() << "built without GAPART_FAULT_INJECTION";
}
#endif

TEST(DurabilityIo, TruncatedGraphFileIsTyped) {
  const std::string path = fresh_dir("iotrunc") + ".graph";
  write_graph_file(path, make_grid(4, 4));

  std::string contents;
  {
    std::ifstream is(path, std::ios::binary);
    contents.assign(std::istreambuf_iterator<char>(is),
                    std::istreambuf_iterator<char>());
  }
  // Drop the last vertex line: the header now promises more than the file
  // holds — a crashed writer's artifact, which must be a typed error, never
  // a silently smaller graph.
  const auto cut = contents.find_last_of('\n', contents.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  {
    std::ofstream os(path, std::ios::trunc | std::ios::binary);
    os << contents.substr(0, cut + 1);
  }
  EXPECT_THROW(read_graph_file(path), IoError);

  EXPECT_THROW(read_graph_file(path + ".does-not-exist"), IoError);
}

}  // namespace
}  // namespace gapart
