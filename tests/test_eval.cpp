// Tests of the unified evaluation core: EvalContext accounting, the fused
// mutate+evaluate path, the move_gain/delta-fitness contract, and
// bit-reproducibility of pooled runs against serial runs.
#include "core/eval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/executor.hpp"
#include "common/rng.hpp"
#include "core/dpga.hpp"
#include "core/ga_engine.hpp"
#include "core/init.hpp"
#include "core/mutation.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

// ---------------------------------------------------------------------------
// Property/fuzz: PartitionState::move_gain(v, to) must equal the observed
// fitness delta of actually performing move(v, to), across random graphs,
// both objectives, and k in {2, 4, 8}.
TEST(EvalDelta, MoveGainMatchesObservedFitnessDelta) {
  Rng rng(0xfeed);
  for (const Objective objective :
       {Objective::kTotalComm, Objective::kWorstComm}) {
    for (const PartId k : {PartId{2}, PartId{4}, PartId{8}}) {
      for (int round = 0; round < 6; ++round) {
        const VertexId n = 20 + rng.uniform_int(40);
        const Graph g = make_random_graph(n, 0.15, rng);
        FitnessParams params;
        params.objective = objective;
        params.lambda = round % 2 == 0 ? 1.0 : 4.0;
        PartitionState state(g, random_balanced_assignment(n, k, rng), k);

        for (int trial = 0; trial < 40; ++trial) {
          const VertexId v = static_cast<VertexId>(rng.uniform_int(n));
          const PartId to = static_cast<PartId>(rng.uniform_int(k));
          const double before = state.fitness(params);
          const double predicted = state.move_gain(v, to, params);
          state.move(v, to);
          const double observed = state.fitness(params) - before;
          EXPECT_NEAR(predicted, observed, 1e-9)
              << "objective=" << static_cast<int>(objective) << " k=" << k
              << " v=" << v << " to=" << to;
          // The incrementally-maintained fitness must stay glued to the
          // from-scratch evaluation.
          EXPECT_NEAR(state.fitness(params),
                      evaluate_fitness(g, state.assignment(), k, params),
                      1e-9);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The fused mutate+evaluate path is bit-identical to point_mutation followed
// by a from-scratch evaluation, for the same RNG stream.
TEST(EvalContext, FusedMutateEvaluateMatchesUnfusedPath) {
  Rng rng(0xabcd);
  for (const Objective objective :
       {Objective::kTotalComm, Objective::kWorstComm}) {
    const Graph g = make_random_graph(60, 0.12, rng);
    FitnessParams params;
    params.objective = objective;
    EvalContext eval(g, 4, params);
    for (int trial = 0; trial < 20; ++trial) {
      const Assignment base = random_balanced_assignment(60, 4, rng);
      const std::uint64_t seed = rng.next_u64();

      Assignment fused = base;
      Rng ra(seed);
      const double fused_fitness = eval.mutate_and_evaluate(fused, 0.05, ra);

      Assignment unfused = base;
      Rng rb(seed);
      point_mutation(unfused, 4, 0.05, rb);
      const double unfused_fitness = evaluate_fitness(g, unfused, 4, params);

      EXPECT_EQ(fused, unfused);
      EXPECT_DOUBLE_EQ(fused_fitness, unfused_fitness);
      // Both generators must end in the same state (same draw count).
      EXPECT_EQ(ra.next_u64(), rb.next_u64());
    }
  }
}

TEST(EvalContext, CountsFullAndDeltaSeparately) {
  const Graph g = make_grid(6, 6);
  EvalContext eval(g, 2, FitnessParams{});
  Rng rng(5);
  const Assignment a = random_balanced_assignment(36, 2, rng);

  EXPECT_EQ(eval.full_evaluations(), 0);
  eval.evaluate(a);
  EXPECT_EQ(eval.full_evaluations(), 1);
  EXPECT_EQ(eval.delta_evaluations(), 0);

  PartitionState state = eval.make_state(a);
  EXPECT_EQ(eval.full_evaluations(), 2);
  EXPECT_DOUBLE_EQ(eval.adopt(state), state.fitness(eval.params()));
  EXPECT_EQ(eval.full_evaluations(), 2);  // adopt is not an evaluation

  eval.count_delta(3);
  EXPECT_EQ(eval.delta_evaluations(), 3);
  EXPECT_EQ(eval.total_evaluations(), 5);

  eval.metrics(a);  // reporting only
  EXPECT_EQ(eval.total_evaluations(), 5);

  eval.reset_counts();
  EXPECT_EQ(eval.total_evaluations(), 0);
}

TEST(EvalContext, HillClimbCountsOneDeltaPerMove) {
  const Mesh mesh = paper_mesh(98);
  Rng rng(17);
  EvalContext eval(mesh.graph, 4, FitnessParams{});
  PartitionState state =
      eval.make_state(random_balanced_assignment(98, 4, rng));
  EXPECT_EQ(eval.full_evaluations(), 1);
  HillClimbOptions options;
  options.max_passes = 3;
  const HillClimbResult result = hill_climb(eval, state, options);
  EXPECT_GT(result.moves, 0);  // a random partition always has uphill moves
  EXPECT_EQ(eval.delta_evaluations(), result.moves);
  EXPECT_EQ(eval.full_evaluations(), 1);  // no re-evaluation after the climb
}

// ---------------------------------------------------------------------------
// Determinism: a pooled run must match the serial run gene-for-gene, at any
// thread count.
TEST(EvalDeterminism, PooledGaEngineMatchesSerialGeneForGene) {
  const Mesh mesh = paper_mesh(118);
  GaConfig cfg;
  cfg.num_parts = 4;
  cfg.population_size = 30;
  cfg.hill_climb_offspring = true;
  cfg.hill_climb_fraction = 0.5;
  Rng seeder(3);
  const auto init =
      make_random_population(118, 4, cfg.population_size, seeder);

  GaEngine serial(mesh.graph, cfg, init, Rng(77), nullptr);
  for (int s = 0; s < 8; ++s) serial.step();

  for (int threads : {2, 4, 8}) {
    Executor pool(threads);
    GaEngine pooled(mesh.graph, cfg, init, Rng(77), &pool);
    for (int s = 0; s < 8; ++s) pooled.step();

    ASSERT_EQ(pooled.population().size(), serial.population().size());
    for (std::size_t i = 0; i < serial.population().size(); ++i) {
      EXPECT_EQ(pooled.population()[i].genes, serial.population()[i].genes)
          << "individual " << i << " at " << threads << " threads";
      EXPECT_DOUBLE_EQ(pooled.population()[i].fitness,
                       serial.population()[i].fitness);
    }
    EXPECT_EQ(pooled.best().genes, serial.best().genes);
    EXPECT_EQ(pooled.full_evaluations(), serial.full_evaluations());
    EXPECT_EQ(pooled.delta_evaluations(), serial.delta_evaluations());
  }
}

TEST(EvalDeterminism, PooledDpgaMatchesSerial) {
  const Mesh mesh = paper_mesh(139);
  DpgaConfig cfg;
  cfg.num_islands = 4;
  cfg.migration_interval = 3;
  cfg.ga.num_parts = 4;
  cfg.ga.population_size = 40;
  cfg.ga.max_generations = 12;
  cfg.ga.hill_climb_offspring = true;
  Rng seeder(11);
  const auto init = make_random_population(139, 4, 40, seeder);

  cfg.parallel = false;
  const DpgaResult serial = run_dpga(mesh.graph, cfg, init, Rng(5));

  cfg.parallel = true;
  cfg.num_threads = 4;
  const DpgaResult pooled = run_dpga(mesh.graph, cfg, init, Rng(5));

  EXPECT_EQ(pooled.best, serial.best);
  EXPECT_DOUBLE_EQ(pooled.best_fitness, serial.best_fitness);
  EXPECT_EQ(pooled.evaluations, serial.evaluations);
  EXPECT_EQ(pooled.full_evaluations, serial.full_evaluations);
  EXPECT_EQ(pooled.delta_evaluations, serial.delta_evaluations);
  EXPECT_EQ(pooled.island_best_fitness, serial.island_best_fitness);

  // An externally supplied pool behaves identically too.
  Executor pool(3);
  cfg.parallel = false;
  const DpgaResult external = run_dpga(mesh.graph, cfg, init, Rng(5), &pool);
  EXPECT_EQ(external.best, serial.best);
  EXPECT_EQ(external.evaluations, serial.evaluations);
}

}  // namespace
}  // namespace gapart
