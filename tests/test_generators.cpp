#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/components.hpp"

namespace gapart {
namespace {

TEST(Generators, PathStructure) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SingleVertexPath) {
  const Graph g = make_path(1);
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Generators, CycleStructure) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 6);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.has_edge(5, 0));
}

TEST(Generators, CompleteStructure) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.num_edges(), 15);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(Generators, StarStructure) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.num_edges(), 6);
  EXPECT_EQ(g.degree(0), 6);
  for (VertexId v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(Generators, GridStructure) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  // Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.num_edges(), 17);
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(5), 4);   // interior (row1,col1)
  EXPECT_TRUE(g.has_coordinates());
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, GridDegeneratesToPath) {
  const Graph g = make_grid(1, 5);
  EXPECT_EQ(g.num_edges(), 4);
}

TEST(Generators, TorusIsRegular) {
  const Graph g = make_torus(4, 5);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 40);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, TwoCliquesBridge) {
  const Graph g = make_two_cliques(5);
  EXPECT_EQ(g.num_vertices(), 10);
  // 2 * C(5,2) + 1 bridge.
  EXPECT_EQ(g.num_edges(), 21);
  EXPECT_TRUE(g.has_edge(4, 5));
  EXPECT_FALSE(g.has_edge(0, 9));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, CliqueChainStructure) {
  const Graph g = make_clique_chain(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  // 3 * C(4,2) + 2 joints.
  EXPECT_EQ(g.num_edges(), 20);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomGraphEdgeCountNearExpectation) {
  Rng rng(13);
  const Graph g = make_random_graph(60, 0.2, rng);
  const double expected = 0.2 * 60 * 59 / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              4.0 * std::sqrt(expected));
}

TEST(Generators, RandomGraphZeroProbabilityIsEmpty) {
  Rng rng(13);
  EXPECT_EQ(make_random_graph(20, 0.0, rng).num_edges(), 0);
}

TEST(Generators, RandomGraphFullProbabilityIsComplete) {
  Rng rng(13);
  EXPECT_EQ(make_random_graph(10, 1.0, rng).num_edges(), 45);
}

TEST(Generators, GeometricEdgesRespectRadius) {
  Rng rng(17);
  const Graph g = make_random_geometric(80, 0.2, rng);
  ASSERT_TRUE(g.has_coordinates());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      EXPECT_LE(squared_distance(g.coordinate(v), g.coordinate(u)),
                0.2 * 0.2 + 1e-12);
    }
  }
}

TEST(Generators, ConnectedGeometricAlwaysConnected) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    Rng rng(seed);
    // Radius far below the connectivity threshold forces stitching.
    const Graph g = make_connected_geometric(60, 0.05, rng);
    EXPECT_TRUE(is_connected(g)) << "seed " << seed;
    EXPECT_EQ(g.num_vertices(), 60);
  }
}

TEST(Generators, InvalidArgumentsRejected) {
  Rng rng(1);
  EXPECT_THROW(make_path(0), Error);
  EXPECT_THROW(make_cycle(2), Error);
  EXPECT_THROW(make_star(1), Error);
  EXPECT_THROW(make_two_cliques(1), Error);
  EXPECT_THROW(make_random_graph(5, 1.5, rng), Error);
  EXPECT_THROW(make_random_geometric(5, 0.0, rng), Error);
  EXPECT_THROW(make_torus(2, 5), Error);
}

}  // namespace
}  // namespace gapart
