// Robustness / edge-case coverage across modules: degenerate sizes, forced
// solver restarts, extreme configurations, failure injection.
#include <gtest/gtest.h>

#include "baselines/kl.hpp"
#include "common/rng.hpp"
#include "core/contracted_ga.hpp"
#include "core/dpga.hpp"
#include "core/hill_climb.hpp"
#include "core/init.hpp"
#include "core/mutation.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "spectral/lanczos.hpp"
#include "spectral/multilevel.hpp"
#include "spectral/rsb.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::max_size_deviation;

TEST(LanczosEdge, TinyKrylovBudgetConvergesViaRestarts) {
  // max_steps far below what single-shot convergence needs: the restart
  // logic must carry it.
  const Graph g = make_grid(12, 12);
  Rng rng(3);
  LanczosOptions opt;
  opt.max_steps = 8;
  opt.max_restarts = 40;
  const auto res = fiedler_pair_lanczos(g, rng, opt);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.restarts, 0);
}

TEST(LanczosEdge, ReportsNonConvergenceHonestly) {
  const Graph g = make_grid(16, 16);
  Rng rng(5);
  LanczosOptions opt;
  opt.max_steps = 3;
  opt.max_restarts = 0;
  opt.tolerance = 1e-14;
  const auto res = fiedler_pair_lanczos(g, rng, opt);
  EXPECT_FALSE(res.converged);
  EXPECT_GT(res.residual, 0.0);
  // Even unconverged, the Ritz vector is a usable descent direction.
  EXPECT_EQ(res.pair.vector.size(), 256u);
}

TEST(LanczosEdge, CompleteGraphImmediateBreakdown) {
  // K_n's Laplacian restricted to 1^perp is n*I: the Krylov space collapses
  // after one step (happy breakdown) and must still return lambda_2 = n.
  const Graph g = make_complete(12);
  Rng rng(7);
  const auto res = fiedler_pair_lanczos(g, rng);
  EXPECT_NEAR(res.pair.value, 12.0, 1e-8);
}

TEST(RsbEdge, StarGraph) {
  Rng rng(9);
  const auto a = rsb_partition(make_star(9), 3, rng);
  EXPECT_LE(max_size_deviation(a, 3), 1);
}

TEST(RsbEdge, TwoVertices) {
  Rng rng(11);
  const auto a = rsb_partition(make_path(2), 2, rng);
  EXPECT_NE(a[0], a[1]);
}

TEST(MultilevelEdge, MorePartsThanCoarseTarget) {
  // coarse target (k * per-part) exceeding |V| must degrade gracefully to
  // flat RSB.
  const Mesh mesh = paper_mesh(78);
  Rng rng(13);
  MultilevelOptions opt;
  opt.coarse_vertices_per_part = 1000;
  const auto a = multilevel_partition(mesh.graph, 4, rng, opt);
  EXPECT_TRUE(is_valid_assignment(mesh.graph, a, 4));
}

TEST(MultilevelEdge, WorstCommObjectiveInRefinement) {
  const Mesh mesh = paper_mesh(144);
  Rng rng(15);
  MultilevelOptions opt;
  opt.fitness.objective = Objective::kWorstComm;
  const auto a = multilevel_partition(mesh.graph, 8, rng, opt);
  EXPECT_TRUE(is_valid_assignment(mesh.graph, a, 8));
  EXPECT_LE(compute_metrics(mesh.graph, a, 8).imbalance_sq, 40.0);
}

TEST(HillClimbEdge, SinglePartNoBoundary) {
  const Graph g = make_grid(4, 4);
  Assignment a(16, 0);
  HillClimbOptions opt;
  const auto res = hill_climb(g, a, 1, opt);
  EXPECT_EQ(res.moves, 0);
}

TEST(HillClimbEdge, DisconnectedGraph) {
  GraphBuilder b(8);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  Assignment a = {0, 1, 0, 1, 0, 1, 0, 1};
  HillClimbOptions opt;
  opt.max_passes = 5;
  EXPECT_NO_THROW(hill_climb(g, a, 2, opt));
}

TEST(KlEdge, SingleVertexPerPart) {
  const Graph g = make_cycle(4);
  PartitionState state(g, {0, 1, 2, 3}, 4);
  EXPECT_NO_THROW(kl_refine(state));
  EXPECT_TRUE(is_valid_assignment(g, state.assignment(), 4));
}

TEST(KlEdge, EdgelessGraph) {
  GraphBuilder b(6);
  const Graph g = b.build();  // must outlive the PartitionState view
  PartitionState state(g, {0, 0, 1, 1, 0, 1}, 2);
  const auto res = kl_refine(state);
  EXPECT_EQ(res.moves_applied, 0);  // nothing to gain without edges
}

TEST(DpgaEdge, MigrantsZeroDisablesExchange) {
  const Graph g = make_two_cliques(6);
  Rng rng(17);
  DpgaConfig cfg;
  cfg.num_islands = 4;
  cfg.migrants_per_exchange = 0;
  cfg.ga.num_parts = 2;
  cfg.ga.population_size = 32;
  cfg.ga.max_generations = 10;
  auto init = make_random_population(g.num_vertices(), 2,
                                     cfg.ga.population_size, rng);
  EXPECT_NO_THROW(run_dpga(g, cfg, std::move(init), rng.split()));
}

TEST(DpgaEdge, PopulationNotDivisibleByIslands) {
  const Graph g = make_grid(5, 5);
  Rng rng(19);
  DpgaConfig cfg;
  cfg.num_islands = 3;
  cfg.topology = TopologyKind::kRing;
  cfg.ga.num_parts = 2;
  cfg.ga.population_size = 32;  // 32/3 = 10 each, 2 dropped
  cfg.ga.max_generations = 5;
  auto init = make_random_population(25, 2, cfg.ga.population_size, rng);
  const auto res = run_dpga(g, cfg, std::move(init), rng.split());
  EXPECT_EQ(res.island_best_fitness.size(), 3u);
}

TEST(ContractedGaEdge, WeightedCoarseGraphStillBalances) {
  // After contraction vertex weights are heterogeneous; the GA's quadratic
  // imbalance term must still balance by weight once projected.
  Rng rng(21);
  const Mesh mesh = generate_mesh(Domain(DomainShape::kDisc), 400, rng);
  ContractedGaOptions opt;
  opt.dpga.num_islands = 4;
  opt.dpga.ga.num_parts = 4;
  opt.dpga.ga.population_size = 64;
  opt.dpga.ga.max_generations = 60;
  opt.coarse_vertices_per_part = 15;
  const auto res = contracted_ga_partition(mesh.graph, opt, rng);
  const auto m = compute_metrics(mesh.graph, res.assignment, 4);
  const double mean = mesh.graph.total_vertex_weight() / 4.0;
  for (double w : m.part_weight) {
    EXPECT_NEAR(w, mean, 0.12 * mean);
  }
}

TEST(MutationEdge, FullRateTwoParts) {
  Rng rng(23);
  Assignment a(50, 0);
  point_mutation(a, 2, 1.0, rng);
  for (PartId p : a) EXPECT_EQ(p, 1);  // only one "other" part
}

TEST(SeededPopulationEdge, ZeroSwapFractionClones) {
  Rng rng(25);
  const auto seed = random_balanced_assignment(30, 3, rng);
  const auto pop = make_seeded_population(seed, 5, 0.0, rng);
  for (const auto& member : pop) EXPECT_EQ(member, seed);
}

TEST(IncrementalEdge, NoNewVerticesIsSeededRefinement) {
  // previous covers the whole graph: incremental seeding degenerates to
  // perturbed clones of it.
  const Mesh mesh = paper_mesh(78);
  Rng rng(27);
  const auto prev = random_balanced_assignment(78, 4, rng);
  const auto pop =
      make_incremental_population(mesh.graph, prev, 4, 4, 0.05, rng);
  EXPECT_EQ(pop[0], prev);
}

TEST(MeshEdge, MinimumSizeMesh) {
  Rng rng(29);
  const Mesh mesh = generate_mesh(Domain(DomainShape::kRectangle), 4, rng);
  EXPECT_EQ(mesh.graph.num_vertices(), 4);
  EXPECT_GE(mesh.graph.num_edges(), 3);
}

TEST(MeshEdge, LargeDensifyMultiplesOfBase) {
  // Growing by more than the base size (stress for the spacing heuristic).
  Rng rng(31);
  const Mesh base = generate_mesh(Domain(DomainShape::kDisc), 50, rng);
  const Mesh grown = densify_mesh(base, Domain(DomainShape::kDisc), 75, rng);
  EXPECT_EQ(grown.graph.num_vertices(), 125);
}

}  // namespace
}  // namespace gapart
