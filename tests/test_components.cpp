#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "graph/generators.hpp"

namespace gapart {
namespace {

Graph two_triangles() {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 3);
  return b.build();
}

TEST(Components, SingleComponent) {
  const auto comp = connected_components(make_path(6));
  EXPECT_EQ(comp.count, 1);
  for (VertexId c : comp.label) EXPECT_EQ(c, 0);
}

TEST(Components, TwoComponentsLabeledByDiscovery) {
  const auto comp = connected_components(two_triangles());
  EXPECT_EQ(comp.count, 2);
  EXPECT_EQ(comp.label[0], 0);
  EXPECT_EQ(comp.label[3], 1);
  const auto sizes = comp.sizes();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 3);
  EXPECT_EQ(sizes[1], 3);
}

TEST(Components, IsolatedVerticesAreOwnComponents) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const auto comp = connected_components(b.build());
  EXPECT_EQ(comp.count, 3);
}

TEST(Components, EmptyGraphConnectedByConvention) {
  GraphBuilder b(0);
  EXPECT_TRUE(is_connected(b.build()));
}

TEST(Components, IsConnectedMatchesCount) {
  EXPECT_TRUE(is_connected(make_cycle(5)));
  EXPECT_FALSE(is_connected(two_triangles()));
}

TEST(Bfs, DistancesOnPath) {
  const auto dist = bfs_distances(make_path(5), 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
  }
}

TEST(Bfs, UnreachableIsMinusOne) {
  const auto dist = bfs_distances(two_triangles(), 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[5], -1);
}

TEST(Bfs, MaskRestrictsTraversal) {
  const Graph g = make_path(5);
  // Remove vertex 2 from play: 3 and 4 become unreachable from 0.
  std::vector<char> mask = {1, 1, 0, 1, 1};
  const auto dist = bfs_distances(g, 0, mask);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Bfs, SourceExcludedByMaskRejected) {
  const Graph g = make_path(3);
  std::vector<char> mask = {0, 1, 1};
  EXPECT_THROW(bfs_distances(g, 0, mask), Error);
}

TEST(Bfs, InvalidSourceRejected) {
  EXPECT_THROW(bfs_distances(make_path(3), 7), Error);
}

TEST(FarthestVertex, EndOfPath) {
  EXPECT_EQ(farthest_vertex(make_path(9), 0), 8);
  EXPECT_EQ(farthest_vertex(make_path(9), 8), 0);
  EXPECT_EQ(farthest_vertex(make_path(9), 4), 0);  // tie broken by small id
}

TEST(PseudoPeripheral, PathEndpoint) {
  const VertexId v = pseudo_peripheral_vertex(make_path(10));
  EXPECT_TRUE(v == 0 || v == 9);
}

TEST(PseudoPeripheral, GridCorner) {
  const Graph g = make_grid(5, 5);
  const VertexId v = pseudo_peripheral_vertex(g);
  // Corners of the grid: 0, 4, 20, 24.
  EXPECT_TRUE(v == 0 || v == 4 || v == 20 || v == 24) << v;
}

TEST(PseudoPeripheral, MaskedComponent) {
  const Graph g = two_triangles();
  std::vector<char> mask = {0, 0, 0, 1, 1, 1};
  const VertexId v = pseudo_peripheral_vertex(g, mask);
  EXPECT_GE(v, 3);
}

}  // namespace
}  // namespace gapart
