// Transport seam: loopback pair semantics (ordering, bounded-queue
// backpressure, link partitions, close/EOF), the seeded transport fault
// matrix (drop/dup/reorder/truncate at the send side), and socket framing
// over Unix-domain and TCP links.  Companion: test_replication.cpp drives
// the replication protocol through the same seam.
#include "service/transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.hpp"

namespace gapart {
namespace {

TEST(TransportLoopback, DeliversFramesInOrder) {
  auto [leader, follower] = LoopbackTransport::create_pair();
  leader->send("alpha");
  leader->send("beta");
  leader->send("gamma");
  EXPECT_EQ(follower->pending(), 3u);
  EXPECT_EQ(follower->receive(0.0), "alpha");
  EXPECT_EQ(follower->receive(0.0), "beta");
  EXPECT_EQ(follower->receive(0.0), "gamma");
  EXPECT_FALSE(follower->receive(0.0).has_value());

  // Both directions are independent.
  follower->send("ack");
  EXPECT_EQ(leader->receive(0.0), "ack");
}

TEST(TransportLoopback, BoundedQueueBackpressures) {
  auto [a, b] = LoopbackTransport::create_pair(/*max_queued_frames=*/2);
  a->send("one");
  a->send("two");
  EXPECT_THROW(a->send("three"), TransportError);
  // Draining makes room again: backpressure, not frame loss.
  EXPECT_EQ(b->receive(0.0), "one");
  a->send("three");
  EXPECT_EQ(b->receive(0.0), "two");
  EXPECT_EQ(b->receive(0.0), "three");
}

TEST(TransportLoopback, LinkPartitionCutsBothDirectionsButKeepsQueue) {
  auto [a, b] = LoopbackTransport::create_pair();
  a->send("before");
  a->set_link_down(true);
  EXPECT_THROW(a->send("during"), TransportError);
  EXPECT_THROW(b->send("during"), TransportError);
  // A partition cuts the link; it does not eat what was already in flight.
  EXPECT_EQ(b->receive(0.0), "before");
  a->set_link_down(false);
  a->send("after");
  EXPECT_EQ(b->receive(0.0), "after");
}

TEST(TransportLoopback, CloseSurfacesAsPeerClosedAfterDrain) {
  auto [a, b] = LoopbackTransport::create_pair();
  a->send("last");
  a->close();
  EXPECT_FALSE(b->peer_closed());  // one frame still queued
  EXPECT_EQ(b->receive(0.0), "last");
  EXPECT_TRUE(b->peer_closed());
  EXPECT_FALSE(b->receive(0.0).has_value());
  EXPECT_THROW(b->send("into the void"), TransportError);
}

TEST(TransportLoopback, ReceiveTimeoutReturnsEmpty) {
  auto [a, b] = LoopbackTransport::create_pair();
  (void)a;
  EXPECT_FALSE(b->receive(0.01).has_value());
}

// ---------------------------------------------------------------------------
// The fault matrix: every network pathology, surgically injectable.

TEST(TransportFaults, SendFaultThrowsAndLosesNothingQueued) {
  auto [a, b] = LoopbackTransport::create_pair();
  a->send("first");
  {
    ScopedFaultInjection scope(FaultSite::kTransportSend, 1);
    EXPECT_THROW(a->send("second"), TransportError);
  }
  a->send("third");
  EXPECT_EQ(b->receive(0.0), "first");
  EXPECT_EQ(b->receive(0.0), "third");
  EXPECT_FALSE(b->receive(0.0).has_value());
}

TEST(TransportFaults, DropLosesExactlyTheFaultedFrame) {
  auto [a, b] = LoopbackTransport::create_pair();
  {
    ScopedFaultInjection scope(FaultSite::kTransportDrop, 2);
    a->send("kept");
    a->send("dropped");
    a->send("also kept");
  }
  EXPECT_EQ(b->receive(0.0), "kept");
  EXPECT_EQ(b->receive(0.0), "also kept");
  EXPECT_FALSE(b->receive(0.0).has_value());
}

TEST(TransportFaults, DupDeliversTheFrameTwice) {
  auto [a, b] = LoopbackTransport::create_pair();
  {
    ScopedFaultInjection scope(FaultSite::kTransportDup, 1);
    a->send("echo");
  }
  EXPECT_EQ(b->receive(0.0), "echo");
  EXPECT_EQ(b->receive(0.0), "echo");
  EXPECT_FALSE(b->receive(0.0).has_value());
}

TEST(TransportFaults, ReorderOvertakesThePredecessor) {
  auto [a, b] = LoopbackTransport::create_pair();
  {
    ScopedFaultInjection scope(FaultSite::kTransportReorder, 2);
    a->send("first");
    a->send("second");  // injected: arrives before "first"
  }
  EXPECT_EQ(b->receive(0.0), "second");
  EXPECT_EQ(b->receive(0.0), "first");
}

TEST(TransportFaults, TruncateCutsTheFrameShort) {
  auto [a, b] = LoopbackTransport::create_pair();
  const std::string frame(90, 'x');
  {
    ScopedFaultInjection scope(FaultSite::kTransportTruncate, 1);
    a->send(frame);
  }
  const auto got = b->receive(0.0);
  ASSERT_TRUE(got.has_value());
  EXPECT_LT(got->size(), frame.size());
  EXPECT_EQ(*got, frame.substr(0, got->size()));
}

// ---------------------------------------------------------------------------
// Sockets: real byte streams with u32 length-prefix framing.

void exercise_stream_pair(Transport& client, Transport& server) {
  client.send("ping");
  EXPECT_EQ(server.receive(5.0), "ping");
  server.send("pong");
  EXPECT_EQ(client.receive(5.0), "pong");

  // A frame larger than one read() buffer exercises reassembly, and an
  // empty frame exercises the zero-length edge.  The frame must still fit
  // the kernel socket buffer: this test is single-threaded, so a blocking
  // send with no concurrent reader would deadlock.
  const std::string big(100000, 'z');
  client.send(big);
  client.send("");
  client.send("tail");
  EXPECT_EQ(server.receive(5.0), big);
  EXPECT_EQ(server.receive(5.0), "");
  EXPECT_EQ(server.receive(5.0), "tail");

  client.close();
  EXPECT_FALSE(server.receive(5.0).has_value());
  EXPECT_TRUE(server.peer_closed());
}

TEST(TransportSocket, UnixRoundTripAndEof) {
  const std::string path =
      std::string(::testing::TempDir()) + "/gapart_transport.sock";
  std::unique_ptr<SocketTransport> server;
  std::thread accepter(
      [&] { server = SocketTransport::listen_unix(path); });
  std::unique_ptr<SocketTransport> client;
  for (int attempt = 0; attempt < 200 && client == nullptr; ++attempt) {
    try {
      client = SocketTransport::connect_unix(path);
    } catch (const TransportError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  accepter.join();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  exercise_stream_pair(*client, *server);
}

TEST(TransportSocket, TcpRoundTripAndEof) {
  const int port = 38417;  // fixed loopback port; retried below if busy
  std::unique_ptr<SocketTransport> server;
  std::thread accepter([&] {
    try {
      server = SocketTransport::listen_tcp(port);
    } catch (const TransportError&) {
      // bind failed (port in use); the client loop below will give up too
    }
  });
  std::unique_ptr<SocketTransport> client;
  for (int attempt = 0; attempt < 200 && client == nullptr; ++attempt) {
    try {
      client = SocketTransport::connect_tcp("127.0.0.1", port);
    } catch (const TransportError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  accepter.join();
  if (client == nullptr || server == nullptr) {
    GTEST_SKIP() << "loopback port " << port << " unavailable";
  }
  exercise_stream_pair(*client, *server);
}

}  // namespace
}  // namespace gapart
