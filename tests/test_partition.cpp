#include "graph/partition.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::brute_force_metrics;
using testing::expect_metrics_near;

TEST(PartitionMetrics, PathBisection) {
  const Graph g = make_path(8);
  const Assignment a = {0, 0, 0, 0, 1, 1, 1, 1};
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m.sum_part_cut, 2.0);
  EXPECT_DOUBLE_EQ(m.max_part_cut, 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(PartitionMetrics, PaperExampleStrings) {
  // The paper's §3.1 example: an 8-node path where node i is adjacent to
  // node i+1.  11100011 is fitter than 10101011 but less fit than 11100001.
  const Graph g = make_path(8);
  const FitnessParams f1{Objective::kTotalComm, 1.0};
  const Assignment s1 = {1, 1, 1, 0, 0, 0, 1, 1};  // "11100011"
  const Assignment s2 = {1, 1, 1, 0, 0, 0, 0, 1};  // "11100001"
  const Assignment s3 = {1, 0, 1, 0, 1, 0, 1, 1};  // "10101011"
  const double fit1 = evaluate_fitness(g, s1, 2, f1);
  const double fit2 = evaluate_fitness(g, s2, 2, f1);
  const double fit3 = evaluate_fitness(g, s3, 2, f1);
  EXPECT_GT(fit2, fit1);  // more balanced wins
  EXPECT_GT(fit1, fit3);  // fewer inter-part edges wins
  // 10101011 has 6 inter-part edges, as the paper states.
  EXPECT_DOUBLE_EQ(compute_metrics(g, s3, 2).total_cut(), 6.0);
}

TEST(PartitionMetrics, ImbalanceQuadratic) {
  const Graph g = make_complete(4);
  // 3-1 split of K4: weights (3,1), mean 2 -> I = 1 + 1 = 2.
  const Assignment a = {0, 0, 0, 1};
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 2.0);
  // All 3 edges to vertex 3 are cut.
  EXPECT_DOUBLE_EQ(m.total_cut(), 3.0);
}

TEST(PartitionMetrics, AllInOnePart) {
  const Graph g = make_cycle(6);
  const Assignment a(6, 0);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 0.0);
  EXPECT_DOUBLE_EQ(m.max_part_cut, 0.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 18.0);  // (6-3)^2 + (0-3)^2
}

TEST(PartitionMetrics, PerPartCutCountsOutgoingEdges) {
  // Star with centre in part 0, leaves split between parts 1 and 2.
  const Graph g = make_star(5);
  const Assignment a = {0, 1, 1, 2, 2};
  const auto m = compute_metrics(g, a, 3);
  EXPECT_DOUBLE_EQ(m.part_cut[0], 4.0);
  EXPECT_DOUBLE_EQ(m.part_cut[1], 2.0);
  EXPECT_DOUBLE_EQ(m.part_cut[2], 2.0);
  EXPECT_DOUBLE_EQ(m.max_part_cut, 4.0);
  EXPECT_DOUBLE_EQ(m.sum_part_cut, 8.0);
  EXPECT_DOUBLE_EQ(m.total_cut(), 4.0);
}

TEST(PartitionMetrics, WeightedEdgesAndVertices) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  b.add_edge(2, 3, 4.0);
  b.set_vertex_weight(0, 2.0);
  b.set_vertex_weight(3, 5.0);
  const Graph g = b.build();
  const Assignment a = {0, 0, 1, 1};
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 3.0);
  // Weights: part0 = 3, part1 = 6, mean 4.5 -> I = 2*(1.5^2) = 4.5.
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 4.5);
}

TEST(Fitness, Fitness1VersusFitness2) {
  const Graph g = make_grid(4, 4);
  Rng rng(3);
  const Assignment a = {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 3, 3, 2, 2, 3, 3};
  const auto m = compute_metrics(g, a, 4);
  const double f1 =
      fitness_from_metrics(m, {Objective::kTotalComm, 1.0});
  const double f2 =
      fitness_from_metrics(m, {Objective::kWorstComm, 1.0});
  EXPECT_DOUBLE_EQ(f1, -(m.imbalance_sq + m.sum_part_cut));
  EXPECT_DOUBLE_EQ(f2, -(m.imbalance_sq + m.max_part_cut));
  EXPECT_LE(f1, f2);  // sum dominates max
}

TEST(Fitness, LambdaScalesCommunicationTerm) {
  const Graph g = make_path(4);
  const Assignment a = {0, 0, 1, 1};
  const auto m = compute_metrics(g, a, 2);
  const double base = fitness_from_metrics(m, {Objective::kTotalComm, 1.0});
  const double doubled = fitness_from_metrics(m, {Objective::kTotalComm, 2.0});
  EXPECT_DOUBLE_EQ(doubled - base, -m.sum_part_cut);
}

TEST(Fitness, HigherIsBetterOrientation) {
  const Graph g = make_path(8);
  const Assignment good = {0, 0, 0, 0, 1, 1, 1, 1};
  const Assignment bad = {0, 1, 0, 1, 0, 1, 0, 1};
  const FitnessParams p{Objective::kTotalComm, 1.0};
  EXPECT_GT(evaluate_fitness(g, good, 2, p), evaluate_fitness(g, bad, 2, p));
}

TEST(IsValidAssignment, Checks) {
  const Graph g = make_path(3);
  EXPECT_TRUE(is_valid_assignment(g, {0, 1, 0}, 2));
  EXPECT_FALSE(is_valid_assignment(g, {0, 1}, 2));          // wrong size
  EXPECT_FALSE(is_valid_assignment(g, {0, 2, 0}, 2));       // part too large
  EXPECT_FALSE(is_valid_assignment(g, {0, -1, 0}, 2));      // negative part
  EXPECT_TRUE(is_valid_assignment(g, {0, 0, 0}, 1));
}

TEST(PartitionMetrics, InvalidInputsThrow) {
  const Graph g = make_path(3);
  EXPECT_THROW(compute_metrics(g, {0, 1}, 2), Error);
  EXPECT_THROW(compute_metrics(g, {0, 1, 2}, 2), Error);
  EXPECT_THROW(compute_metrics(g, {0, 1, 0}, 0), Error);
}

TEST(ObjectiveName, Stable) {
  EXPECT_STREQ(objective_name(Objective::kTotalComm),
               "fitness1 (total communication)");
  EXPECT_STREQ(objective_name(Objective::kWorstComm),
               "fitness2 (worst-case communication)");
}

// Property sweep: metrics must agree with an independent brute-force
// implementation on random graphs and random assignments.
class MetricsPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(MetricsPropertyTest, MatchesBruteForce) {
  const auto [n, k, p] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + k * 10) +
          static_cast<std::uint64_t>(p * 100));
  const Graph g = make_random_graph(static_cast<VertexId>(n), p, rng);
  for (int trial = 0; trial < 10; ++trial) {
    Assignment a(static_cast<std::size_t>(n));
    for (auto& gene : a) gene = static_cast<PartId>(rng.uniform_int(k));
    const auto fast = compute_metrics(g, a, static_cast<PartId>(k));
    const auto slow = brute_force_metrics(g, a, static_cast<PartId>(k));
    expect_metrics_near(fast, slow);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, MetricsPropertyTest,
    ::testing::Combine(::testing::Values(5, 20, 60),
                       ::testing::Values(2, 3, 8),
                       ::testing::Values(0.1, 0.5, 0.9)));

}  // namespace
}  // namespace gapart
