// Shared helpers for the gapart test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"

namespace gapart::testing {

/// Brute-force metric computation, structured completely differently from
/// compute_metrics (edge-list scan instead of CSR row scan) so the two
/// implementations cross-check each other.
inline PartitionMetrics brute_force_metrics(const Graph& g,
                                            const Assignment& a,
                                            PartId num_parts) {
  PartitionMetrics m;
  m.part_weight.assign(static_cast<std::size_t>(num_parts), 0.0);
  m.part_cut.assign(static_cast<std::size_t>(num_parts), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    m.part_weight[static_cast<std::size_t>(a[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto nbrs = g.neighbors(u);
    const auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v <= u) continue;  // visit each undirected edge once
      const PartId pu = a[static_cast<std::size_t>(u)];
      const PartId pv = a[static_cast<std::size_t>(v)];
      if (pu != pv) {
        m.part_cut[static_cast<std::size_t>(pu)] += wgts[i];
        m.part_cut[static_cast<std::size_t>(pv)] += wgts[i];
      }
    }
  }
  const double mean = g.total_vertex_weight() / static_cast<double>(num_parts);
  for (PartId q = 0; q < num_parts; ++q) {
    const double d = m.part_weight[static_cast<std::size_t>(q)] - mean;
    m.imbalance_sq += d * d;
    m.sum_part_cut += m.part_cut[static_cast<std::size_t>(q)];
    m.max_part_cut =
        std::max(m.max_part_cut, m.part_cut[static_cast<std::size_t>(q)]);
  }
  return m;
}

/// Asserts the two metric breakdowns agree to floating-point noise.
inline void expect_metrics_near(const PartitionMetrics& x,
                                const PartitionMetrics& y, double tol = 1e-9) {
  ASSERT_EQ(x.part_weight.size(), y.part_weight.size());
  for (std::size_t q = 0; q < x.part_weight.size(); ++q) {
    EXPECT_NEAR(x.part_weight[q], y.part_weight[q], tol) << "part " << q;
    EXPECT_NEAR(x.part_cut[q], y.part_cut[q], tol) << "part " << q;
  }
  EXPECT_NEAR(x.sum_part_cut, y.sum_part_cut, tol);
  EXPECT_NEAR(x.max_part_cut, y.max_part_cut, tol);
  EXPECT_NEAR(x.imbalance_sq, y.imbalance_sq, tol);
}

/// Part sizes (vertex counts) of an assignment.
inline std::vector<int> part_sizes(const Assignment& a, PartId num_parts) {
  std::vector<int> sizes(static_cast<std::size_t>(num_parts), 0);
  for (PartId p : a) ++sizes[static_cast<std::size_t>(p)];
  return sizes;
}

/// Max |size - n/k| over parts.
inline int max_size_deviation(const Assignment& a, PartId num_parts) {
  const auto sizes = part_sizes(a, num_parts);
  const double ideal =
      static_cast<double>(a.size()) / static_cast<double>(num_parts);
  double dev = 0.0;
  for (int s : sizes) {
    dev = std::max(dev, std::abs(static_cast<double>(s) - ideal));
  }
  return static_cast<int>(dev + 0.999999);
}

/// True when every part id in [0, num_parts) is used at least once.
inline bool all_parts_used(const Assignment& a, PartId num_parts) {
  const auto sizes = part_sizes(a, num_parts);
  for (int s : sizes) {
    if (s == 0) return false;
  }
  return true;
}

}  // namespace gapart::testing
