// Tests for the experiment-harness helper library: these helpers define how
// every paper table is produced (best-of-N runs, paper GA settings, quick
// mode), so they are held to the same standard as the library proper.
#include "bench_common.hpp"

#include <gtest/gtest.h>

#include "core/init.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"

namespace gapart::bench {
namespace {

CliArgs make_args(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(RunSettingsParse, Defaults) {
  const auto args = make_args({"bench"});
  const auto s = RunSettings::from_cli(args, 400, 150);
  // GAPART_QUICK may be set in the environment of a CI smoke run; both
  // outcomes are internally consistent.
  if (s.quick) {
    EXPECT_EQ(s.runs, 2);
  } else {
    EXPECT_EQ(s.runs, 5);
    EXPECT_EQ(s.max_generations, 400);
    EXPECT_EQ(s.stall_generations, 150);
  }
  EXPECT_FALSE(s.hill_climb);
}

TEST(RunSettingsParse, QuickModeShrinksBudget) {
  const auto args = make_args({"bench", "--quick"});
  const auto s = RunSettings::from_cli(args, 400, 150);
  EXPECT_TRUE(s.quick);
  EXPECT_EQ(s.runs, 2);
  EXPECT_EQ(s.max_generations, 60);
  EXPECT_EQ(s.stall_generations, 0);
}

TEST(RunSettingsParse, ExplicitFlagsWin) {
  const auto args =
      make_args({"bench", "--quick", "--runs=7", "--gens=123", "--stall=9",
                 "--hc", "--hc-fraction=0.5", "--seed=42"});
  const auto s = RunSettings::from_cli(args, 400, 150);
  EXPECT_EQ(s.runs, 7);
  EXPECT_EQ(s.max_generations, 123);
  EXPECT_EQ(s.stall_generations, 9);
  EXPECT_TRUE(s.hill_climb);
  EXPECT_DOUBLE_EQ(s.hill_climb_fraction, 0.5);
  EXPECT_EQ(s.base_seed, 42u);
}

TEST(RunSettingsParse, HillClimbDefaultRespected) {
  const auto args = make_args({"bench"});
  const auto s = RunSettings::from_cli(args, 100, 0, /*default_hill_climb=*/true);
  EXPECT_TRUE(s.hill_climb);
  const auto off = make_args({"bench", "--hc=0"});
  EXPECT_FALSE(RunSettings::from_cli(off, 100, 0, true).hill_climb);
}

TEST(HarnessConfig, AppliesSettingsOnPaperPreset) {
  RunSettings s;
  s.max_generations = 77;
  s.stall_generations = 11;
  s.hill_climb = true;
  const auto cfg = harness_dpga_config(8, Objective::kWorstComm, s);
  EXPECT_EQ(cfg.ga.max_generations, 77);
  EXPECT_EQ(cfg.ga.stall_generations, 11);
  EXPECT_TRUE(cfg.ga.hill_climb_offspring);
  // Paper constants survive.
  EXPECT_EQ(cfg.ga.population_size, 320);
  EXPECT_EQ(cfg.num_islands, 16);
  EXPECT_EQ(cfg.ga.num_parts, 8);
  EXPECT_EQ(cfg.ga.fitness.objective, Objective::kWorstComm);
}

TEST(BestOfRuns, PicksBestAndAveragesAcrossRuns) {
  const Mesh mesh = paper_mesh(78);
  RunSettings s;
  s.runs = 3;
  s.max_generations = 20;
  s.stall_generations = 0;
  const auto cfg = harness_dpga_config(2, Objective::kTotalComm, s);
  const auto cell = best_of_runs(
      mesh.graph, cfg, random_init(mesh.graph, 2, cfg.ga.population_size), s,
      /*salt=*/1);
  EXPECT_GT(cell.generations, 0);
  EXPECT_GT(cell.seconds, 0.0);
  // The best run's cut can only be at or below the mean across runs.
  EXPECT_LE(cell.total_cut, cell.mean_total_cut + 1e-9);
  EXPECT_LE(cell.max_part_cut, cell.mean_max_part_cut + 1e-9);
}

TEST(BestOfRuns, DeterministicForSameSeedAndSalt) {
  const Mesh mesh = paper_mesh(78);
  RunSettings s;
  s.runs = 2;
  s.max_generations = 10;
  s.stall_generations = 0;
  const auto cfg = harness_dpga_config(2, Objective::kTotalComm, s);
  const auto a = best_of_runs(
      mesh.graph, cfg, random_init(mesh.graph, 2, cfg.ga.population_size), s,
      7);
  const auto b = best_of_runs(
      mesh.graph, cfg, random_init(mesh.graph, 2, cfg.ga.population_size), s,
      7);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
  EXPECT_DOUBLE_EQ(a.total_cut, b.total_cut);
}

TEST(BestOfRuns, DifferentSaltsDecorrelate) {
  const Mesh mesh = paper_mesh(78);
  RunSettings s;
  s.runs = 1;
  s.max_generations = 5;
  s.stall_generations = 0;
  const auto cfg = harness_dpga_config(4, Objective::kTotalComm, s);
  const auto a = best_of_runs(
      mesh.graph, cfg, random_init(mesh.graph, 4, cfg.ga.population_size), s,
      1);
  const auto b = best_of_runs(
      mesh.graph, cfg, random_init(mesh.graph, 4, cfg.ga.population_size), s,
      2);
  // Not a hard guarantee, but with different salts the 5-generation best
  // fitness almost surely differs; equal values would indicate the salt is
  // ignored.
  EXPECT_NE(a.best_fitness, b.best_fitness);
}

TEST(SeededInitFactory, ProducesSeedFirst) {
  const Mesh mesh = paper_mesh(78);
  Rng rng(3);
  const auto seed = random_balanced_assignment(78, 4, rng);
  auto factory = seeded_init(seed, 10, 0.1);
  Rng rng2(5);
  const auto pop = factory(rng2);
  ASSERT_EQ(pop.size(), 10u);
  EXPECT_EQ(pop[0], seed);
}

TEST(IncrementalInitFactory, ExtendsPrevious) {
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng(7);
  const auto prev = random_balanced_assignment(78, 4, rng);
  auto factory = incremental_init(grown.graph, prev, 4, 6);
  const auto pop = factory(rng);
  ASSERT_EQ(pop.size(), 6u);
  for (std::size_t v = 0; v < prev.size(); ++v) {
    EXPECT_EQ(pop[0][v], prev[v]);
  }
}

TEST(PaperVs, Format) {
  EXPECT_EQ(paper_vs(63, 58.4), "63 / 58");
  EXPECT_EQ(paper_vs(20, 21.0), "20 / 21");
}

}  // namespace
}  // namespace gapart::bench
