#include "core/graph_delta.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/assert.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"

namespace gapart {
namespace {

TEST(GraphDelta, AppendedDeltaOnGrownGrid) {
  // Growing a row-major grid by rows appends vertices; exactly the last old
  // row becomes adjacent to the new range.
  const Graph grown = make_grid(6, 5);  // rows 0..5
  const GraphDelta delta = appended_delta(grown, 25);  // rows 0..4 are old
  EXPECT_EQ(delta.old_num_vertices, 25);
  EXPECT_EQ(delta.num_new(grown), 5);
  ASSERT_EQ(delta.touched_old.size(), 5u);  // row 4
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(delta.touched_old[i], static_cast<VertexId>(20 + i));
  }
  EXPECT_EQ(delta.damage(grown), 10);
}

TEST(GraphDelta, DiffGraphsMatchesAppendedDeltaOnPureGrowth) {
  const Graph old_g = make_grid(5, 5);
  const Graph grown = make_grid(7, 5);
  const GraphDelta a = appended_delta(grown, old_g.num_vertices());
  const GraphDelta d = diff_graphs(old_g, grown);
  EXPECT_EQ(d.old_num_vertices, a.old_num_vertices);
  EXPECT_EQ(d.touched_old, a.touched_old);
}

TEST(GraphDelta, DiffGraphsSeesRewiredSurvivors) {
  // Same vertex count, one edge rewired: both endpoints of the removed and
  // of the added edge are touched.
  GraphBuilder b1(6);
  b1.add_edge(0, 1);
  b1.add_edge(1, 2);
  b1.add_edge(3, 4);
  const Graph g1 = b1.build();
  GraphBuilder b2(6);
  b2.add_edge(0, 1);
  b2.add_edge(1, 2);
  b2.add_edge(4, 5);  // 3-4 removed, 4-5 added
  const Graph g2 = b2.build();
  const GraphDelta d = diff_graphs(g1, g2);
  EXPECT_EQ(d.old_num_vertices, 6);
  EXPECT_EQ(d.touched_old, (std::vector<VertexId>{3, 4, 5}));
}

TEST(GraphDelta, DiffGraphsSeesWeightChanges) {
  GraphBuilder b1(3);
  b1.add_edge(0, 1, 1.0);
  b1.add_edge(1, 2, 1.0);
  const Graph g1 = b1.build();
  GraphBuilder b2(3);
  b2.add_edge(0, 1, 1.0);
  b2.add_edge(1, 2, 2.5);  // weight perturbed, adjacency identical
  const Graph g2 = b2.build();
  const GraphDelta d = diff_graphs(g1, g2);
  EXPECT_EQ(d.touched_old, (std::vector<VertexId>{1, 2}));

  GraphBuilder b3(3);
  b3.add_edge(0, 1, 1.0);
  b3.add_edge(1, 2, 1.0);
  b3.set_vertex_weight(0, 3.0);  // vertex weight perturbed, edges identical
  const Graph g3 = b3.build();
  const GraphDelta dv = diff_graphs(g1, g3);
  EXPECT_EQ(dv.touched_old, (std::vector<VertexId>{0}));
}

TEST(GraphDelta, DiffGraphsOnRetriangulatedMesh) {
  // densify_mesh re-triangulates: the exact diff must at least cover
  // appended_delta's touched set (old vertices adjacent to new ones) and
  // stay far below |V| for localized growth.
  const Mesh base = paper_mesh(183);
  const Mesh grown = paper_incremental_mesh(base, 183, 30);
  const GraphDelta approx = appended_delta(grown.graph, 183);
  const GraphDelta exact = diff_graphs(base.graph, grown.graph);
  EXPECT_EQ(exact.num_new(grown.graph), 30);
  for (const VertexId v : approx.touched_old) {
    EXPECT_TRUE(std::binary_search(exact.touched_old.begin(),
                                   exact.touched_old.end(), v))
        << "vertex " << v << " adjacent to new range but not in exact diff";
  }
  EXPECT_LT(exact.damage(grown.graph), grown.graph.num_vertices() / 2);
}

TEST(GraphDelta, RepairSeedsCoverDamageAndOneHop) {
  const Graph grown = make_grid(6, 5);
  const GraphDelta delta = appended_delta(grown, 25);
  const auto seeds = repair_seeds(delta, grown);
  EXPECT_TRUE(std::is_sorted(seeds.begin(), seeds.end()));
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  // Every new vertex, every touched survivor, and row 3 (one hop from the
  // touched row 4) are present; rows 0..2 are not.
  for (VertexId v = 15; v < 30; ++v) {
    EXPECT_TRUE(std::binary_search(seeds.begin(), seeds.end(), v)) << v;
  }
  for (VertexId v = 0; v < 15; ++v) {
    EXPECT_FALSE(std::binary_search(seeds.begin(), seeds.end(), v)) << v;
  }
}

TEST(GraphDelta, Validation) {
  const Graph g = make_grid(3, 3);
  EXPECT_THROW(appended_delta(g, 10), Error);
  GraphDelta bad;
  bad.old_num_vertices = 20;
  EXPECT_THROW(repair_seeds(bad, g), Error);
  GraphDelta bad_touched;
  bad_touched.old_num_vertices = 4;
  bad_touched.touched_old = {7};  // not a survivor
  EXPECT_THROW(repair_seeds(bad_touched, g), Error);
  const Graph big = make_grid(4, 4);
  EXPECT_THROW(diff_graphs(big, g), Error);
}

}  // namespace
}  // namespace gapart
