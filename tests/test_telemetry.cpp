// Unit coverage for common/telemetry: the log-bucketed histogram (bucket
// math, merge associativity, the documented <= 12.5% quantile error bound vs
// exact quantile() on fuzzed sample sets), the wait-free thread shards under
// concurrent writers (TSan covers the races), the registry snapshot/dump
// formats, and the span tracer (cross-thread nesting, schema-valid JSON,
// ring overflow dropping oldest events into telemetry.dropped_events).
#include "common/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace gapart {
namespace {

// ----------------------------------------------------------- LogHistogram --

TEST(LogHistogram, EmptyIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LogHistogram, SingleSampleEveryQuantile) {
  LogHistogram h;
  h.record(0.125);  // a power of two: exact bucket boundary
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.125);
  EXPECT_DOUBLE_EQ(h.max(), 0.125);
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    // Clamped to [min, max], a single sample is returned exactly.
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.125) << "q=" << q;
  }
}

TEST(LogHistogram, BucketBoundsContainTheirValues) {
  Rng rng(0xb0c1);
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform across the representable range [2^-40, 2^40): ~24 decades.
    const double v = std::exp((rng.uniform() - 0.5) * 55.0);
    const int idx = LogHistogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, LogHistogram::kNumBuckets);
    EXPECT_LE(LogHistogram::bucket_lower(idx), v * (1 + 1e-12));
    EXPECT_GT(LogHistogram::bucket_upper(idx), v * (1 - 1e-12));
  }
  // Outside the range, values clamp to the end buckets by design.
  EXPECT_EQ(LogHistogram::bucket_index(1e-30), 0);
  EXPECT_EQ(LogHistogram::bucket_index(1e30), LogHistogram::kNumBuckets - 1);
}

TEST(LogHistogram, BucketRelativeWidthIsBounded) {
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    const double lo = LogHistogram::bucket_lower(i);
    const double hi = LogHistogram::bucket_upper(i);
    EXPECT_LE(hi / lo, 1.125 + 1e-12) << "bucket " << i;
    EXPECT_GT(hi, lo);
  }
}

TEST(LogHistogram, ZeroAndNegativeLandInZeroBucket) {
  LogHistogram h;
  h.record(0.0);
  h.record(-3.5);
  h.record(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.zero_count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(LogHistogram, QuantileWithinDocumentedBoundOnFuzzedSets) {
  // The headline accuracy contract: bucketed quantiles vs exact quantile()
  // within 12.5% relative error, over several distributions and sizes.
  Rng rng(0x51a7);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform() * 3000);
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(n));
    LogHistogram h;
    const int dist = trial % 4;
    for (int i = 0; i < n; ++i) {
      double v = 0.0;
      switch (dist) {
        case 0: v = rng.uniform() * 1e-3; break;              // uniform micro
        case 1: v = std::exp(rng.uniform() * 20.0 - 10.0); break;  // log-unif
        case 2: v = 1.0 + rng.uniform(); break;               // narrow band
        default:  // heavy tail: mostly small, occasional huge
          v = rng.uniform() < 0.95 ? rng.uniform() * 1e-4
                                   : rng.uniform() * 10.0;
      }
      samples.push_back(v);
      h.record(v);
    }
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
      const double exact = quantile(samples, q);
      const double approx = h.quantile(q);
      EXPECT_NEAR(approx, exact, std::abs(exact) * 0.125 + 1e-15)
          << "trial=" << trial << " dist=" << dist << " n=" << n
          << " q=" << q;
    }
  }
}

TEST(LogHistogram, MergeIsAssociativeAndExact) {
  Rng rng(0xabcd);
  LogHistogram a, b, c;
  LogHistogram all;  // reference: everything recorded into one histogram
  for (int i = 0; i < 900; ++i) {
    const double v = std::exp(rng.uniform() * 12.0 - 6.0);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    all.record(v);
  }
  // (a + b) + c
  LogHistogram ab = a;
  ab.merge(b);
  LogHistogram ab_c = ab;
  ab_c.merge(c);
  // a + (b + c)
  LogHistogram bc = b;
  bc.merge(c);
  LogHistogram a_bc = a;
  a_bc.merge(bc);

  for (const LogHistogram* m : {&ab_c, &a_bc}) {
    EXPECT_EQ(m->count(), all.count());
    // Sums accumulate in different orders, so only near-equality holds.
    EXPECT_NEAR(m->sum(), all.sum(), all.sum() * 1e-12);
    EXPECT_DOUBLE_EQ(m->min(), all.min());
    EXPECT_DOUBLE_EQ(m->max(), all.max());
    for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
      ASSERT_EQ(m->bucket_count(i), all.bucket_count(i)) << "bucket " << i;
    }
    // Identical buckets => identical quantiles, bit for bit.
    for (double q : {0.1, 0.5, 0.9, 0.99}) {
      EXPECT_DOUBLE_EQ(m->quantile(q), all.quantile(q));
    }
  }
  // Merging an empty histogram is the identity.
  LogHistogram empty;
  LogHistogram a2 = a;
  a2.merge(empty);
  EXPECT_EQ(a2.count(), a.count());
  EXPECT_DOUBLE_EQ(a2.quantile(0.5), a.quantile(0.5));
}

// ------------------------------------------------------- ShardedHistogram --

TEST(ShardedHistogram, ConcurrentWritersMergeToTheFullCount) {
  // TSan-covered: N threads hammer one histogram; the merged snapshot must
  // account for every sample with sane moments.
  ShardedHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<double>(1 + ((t * kPerThread + i) % 100)));
      }
    });
  }
  for (auto& th : threads) th.join();

  const LogHistogram merged = h.merged();
  EXPECT_EQ(merged.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 100.0);
  // Each thread cycles 1..100 evenly (20000 % 100 == 0): mean exactly 50.5.
  EXPECT_NEAR(merged.mean(), 50.5, 1e-9);
  const double p50 = merged.quantile(0.5);
  EXPECT_NEAR(p50, 50.5, 50.5 * 0.125);
}

TEST(ShardedHistogram, MergedWhileWritersRunStaysWellFormed) {
  // A reader snapshotting mid-write must see a consistent-enough histogram:
  // monotone quantiles, count <= total eventually written, no crash.
  ShardedHistogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      Rng rng(0x7e57 + 17);
      // >= 1000 records even if the stop flag is already set (single-core
      // schedulers can run the reader loop to completion first).
      for (int i = 0; i < 1000 || !stop.load(std::memory_order_relaxed);
           ++i) {
        h.record(rng.uniform() + 1e-9);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const LogHistogram snap = h.merged();
    const double p10 = snap.quantile(0.1);
    const double p50 = snap.quantile(0.5);
    const double p99 = snap.quantile(0.99);
    EXPECT_LE(p10, p50);
    EXPECT_LE(p50, p99);
    EXPECT_GE(snap.max(), snap.min());
  }
  stop.store(true);
  for (auto& w : writers) w.join();
  EXPECT_GT(h.merged().count(), 0u);
}

// ------------------------------------------------------- TelemetryRegistry --

TEST(TelemetryRegistry, NamedMetricsAreStableAndAggregated) {
  auto& reg = TelemetryRegistry::instance();
  Counter& c1 = reg.counter("test.registry.counter");
  Counter& c2 = reg.counter("test.registry.counter");
  EXPECT_EQ(&c1, &c2);  // same name -> same metric
  c1.reset();
  c1.add(3);
  c2.add(4);
  EXPECT_EQ(c1.value(), 7u);

  reg.gauge("test.registry.gauge").set(2.5);
  auto& h = reg.histogram("test.registry.hist");
  h.reset();
  h.record(1.0);
  h.record(2.0);

  const auto snap = reg.snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& [name, v] : snap.counters) {
    if (name == "test.registry.counter") {
      saw_counter = true;
      EXPECT_EQ(v, 7u);
    }
  }
  for (const auto& [name, v] : snap.gauges) {
    if (name == "test.registry.gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(v, 2.5);
    }
  }
  for (const auto& hs : snap.histograms) {
    if (hs.name == "test.registry.hist") {
      saw_hist = true;
      EXPECT_EQ(hs.hist.count(), 2u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

TEST(TelemetryRegistry, JsonAndPrometheusDumpsAreWellFormed) {
  auto& reg = TelemetryRegistry::instance();
  reg.counter("test.dump.counter").add(1);
  reg.histogram("test.dump.hist").record(0.5);

  std::ostringstream json;
  reg.write_json(json);
  const std::string j = json.str();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"test.dump.counter\""), std::string::npos);
  // Balanced braces (no nesting surprises in a flat two-level dump).
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));

  std::ostringstream prom;
  reg.write_prometheus(prom);
  const std::string p = prom.str();
  EXPECT_NE(p.find("test_dump_counter_total 1"), std::string::npos);
  EXPECT_NE(p.find("# TYPE test_dump_hist summary"), std::string::npos);
  EXPECT_NE(p.find("test_dump_hist_count 1"), std::string::npos);
  // Prometheus names never keep the dots.
  EXPECT_EQ(p.find("test.dump"), std::string::npos);
}

// ----------------------------------------------------------------- Tracer --

/// Tiny recursive-descent JSON validator — enough to assert the emitted
/// Chrome trace is schema-valid without a JSON library dependency.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}

  bool valid_value() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Tracer, ExportIsSchemaValidJsonWithRequiredFields) {
  Tracer& tracer = Tracer::instance();
  tracer.enable(64);
  tracer.record("test.span.a", 10.0, 5.0);
  tracer.record("test.span.b", 20.0, 2.5);
  tracer.disable();

  std::ostringstream os;
  tracer.export_chrome_trace(os);
  const std::string trace = os.str();
  EXPECT_TRUE(JsonCursor(trace).valid_value()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"test.span.a\""), std::string::npos);
  // Every complete event carries ph/ts/dur/pid/tid.
  for (const char* field : {"\"ph\":\"X\"", "\"ts\":", "\"dur\":",
                            "\"pid\":", "\"tid\":"}) {
    EXPECT_NE(trace.find(field), std::string::npos) << field;
  }
  tracer.clear();
}

TEST(Tracer, SpansNestCorrectlyAcrossThreads) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  tracer.enable(1024);

  auto spans = [] {
    SpanSite& outer = SpanSite::site("test.nest.outer");
    SpanSite& inner = SpanSite::site("test.nest.inner");
    ScopedSpan a(outer);
    {
      ScopedSpan b(inner);
    }
  };
  std::thread t1(spans), t2(spans);
  spans();
  t1.join();
  t2.join();
  tracer.disable();

  std::ostringstream os;
  tracer.export_chrome_trace(os);
  const std::string trace = os.str();
  ASSERT_TRUE(JsonCursor(trace).valid_value()) << trace;

  // Parse the flat fields back out per event: (name, ts, dur, tid).
  struct Ev {
    std::string name;
    double ts = 0.0, dur = 0.0;
    int tid = 0;
  };
  std::vector<Ev> events;
  std::size_t pos = 0;
  while ((pos = trace.find("{\"name\":\"", pos)) != std::string::npos) {
    Ev ev;
    const std::size_t name_start = pos + 9;
    const std::size_t name_end = trace.find('"', name_start);
    ev.name = trace.substr(name_start, name_end - name_start);
    ev.ts = std::stod(trace.substr(trace.find("\"ts\":", pos) + 5));
    ev.dur = std::stod(trace.substr(trace.find("\"dur\":", pos) + 6));
    ev.tid = std::stoi(trace.substr(trace.find("\"tid\":", pos) + 6));
    events.push_back(std::move(ev));
    ++pos;
  }
  // 3 executions x 2 spans.
  const auto outer_count = std::count_if(
      events.begin(), events.end(),
      [](const Ev& e) { return e.name == "test.nest.outer"; });
  const auto inner_count = std::count_if(
      events.begin(), events.end(),
      [](const Ev& e) { return e.name == "test.nest.inner"; });
  EXPECT_EQ(outer_count, 3);
  EXPECT_EQ(inner_count, 3);

  // Nesting: every inner interval lies inside exactly one outer interval
  // WITH THE SAME tid; intervals never straddle (proper containment, the
  // invariant chrome://tracing needs to build its flame graph).
  for (const Ev& in : events) {
    if (in.name != "test.nest.inner") continue;
    int containers = 0;
    for (const Ev& out : events) {
      if (out.name != "test.nest.outer" || out.tid != in.tid) continue;
      const bool contains = out.ts <= in.ts + 1e-9 &&
                            in.ts + in.dur <= out.ts + out.dur + 1e-9;
      const bool disjoint =
          in.ts + in.dur <= out.ts + 1e-9 || out.ts + out.dur <= in.ts + 1e-9;
      EXPECT_TRUE(contains || disjoint)
          << "inner [" << in.ts << "," << in.ts + in.dur << ") straddles "
          << "outer [" << out.ts << "," << out.ts + out.dur << ") tid="
          << in.tid;
      containers += contains ? 1 : 0;
    }
    EXPECT_EQ(containers, 1) << "tid=" << in.tid;
  }
  // Three distinct threads -> three distinct tids among the outer spans.
  std::vector<int> tids;
  for (const Ev& e : events) {
    if (e.name == "test.nest.outer") tids.push_back(e.tid);
  }
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), 3u);
  tracer.clear();
}

TEST(Tracer, RingOverflowDropsOldestAndCounts) {
  Tracer& tracer = Tracer::instance();
  auto& reg = TelemetryRegistry::instance();
  Counter& dropped = reg.counter("telemetry.dropped_events");

  tracer.clear();
  tracer.enable(8);  // tiny ring
  const std::uint64_t dropped_before = dropped.value();
  for (int i = 0; i < 20; ++i) {
    tracer.record("test.overflow", static_cast<double>(i), 1.0);
  }
  tracer.disable();

  EXPECT_EQ(dropped.value() - dropped_before, 12u);  // 20 - capacity 8

  std::ostringstream os;
  tracer.export_chrome_trace(os);
  const std::string trace = os.str();
  ASSERT_TRUE(JsonCursor(trace).valid_value()) << trace;
  // The oldest events (ts 0..11) were dropped; the newest 8 survive in
  // order — output is never corrupted, recent history wins.  Timestamps
  // export as fixed-point microseconds at ns resolution.
  EXPECT_EQ(trace.find("\"ts\":11.000,"), std::string::npos);
  for (int ts = 12; ts < 20; ++ts) {
    EXPECT_NE(trace.find("\"ts\":" + std::to_string(ts) + ".000,"),
              std::string::npos)
        << "ts=" << ts;
  }
  tracer.clear();
}

TEST(Tracer, DisabledRecordsNothing) {
  Tracer& tracer = Tracer::instance();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());
  tracer.record("test.disabled", 0.0, 1.0);
  EXPECT_EQ(tracer.buffered_events(), 0u);
}

TEST(ScopedSpan, AlwaysFeedsTheDurationHistogram) {
  // Span duration histograms accumulate even with tracing disabled — that
  // is what makes per-span-name p99s available in production permanently.
  Tracer::instance().disable();
  auto& reg = TelemetryRegistry::instance();
  auto& hist = reg.histogram("span.test.histonly");
  hist.reset();
  {
    SpanSite& site = SpanSite::site("test.histonly");
    ScopedSpan span(site);
  }
  EXPECT_EQ(hist.merged().count(), 1u);
}

}  // namespace
}  // namespace gapart
