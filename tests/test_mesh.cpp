#include "graph/mesh.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "graph/components.hpp"

namespace gapart {
namespace {

TEST(Domain, RectangleContains) {
  const Domain d(DomainShape::kRectangle);
  EXPECT_TRUE(d.contains({0.5, 0.5}));
  EXPECT_TRUE(d.contains({0.0, 1.0}));
  EXPECT_FALSE(d.contains({1.1, 0.5}));
  EXPECT_FALSE(d.contains({0.5, -0.1}));
  EXPECT_DOUBLE_EQ(d.area(), 1.0);
}

TEST(Domain, DiscContains) {
  const Domain d(DomainShape::kDisc);
  EXPECT_TRUE(d.contains({0.5, 0.5}));
  EXPECT_TRUE(d.contains({0.95, 0.5}));
  EXPECT_FALSE(d.contains({0.99, 0.99}));
  EXPECT_NEAR(d.area(), 0.785398, 1e-5);
}

TEST(Domain, AnnulusHasHole) {
  const Domain d(DomainShape::kAnnulus);
  EXPECT_FALSE(d.contains({0.5, 0.5}));  // inside the hole
  EXPECT_TRUE(d.contains({0.9, 0.5}));
  EXPECT_FALSE(d.contains({1.2, 0.5}));
}

TEST(Domain, LShapeMissingQuadrant) {
  const Domain d(DomainShape::kLShape);
  EXPECT_TRUE(d.contains({0.25, 0.25}));
  EXPECT_TRUE(d.contains({0.25, 0.75}));
  EXPECT_TRUE(d.contains({0.75, 0.25}));
  EXPECT_FALSE(d.contains({0.75, 0.75}));
  EXPECT_DOUBLE_EQ(d.area(), 0.75);
}

TEST(Domain, EllipseBoundingBox) {
  const Domain d(DomainShape::kEllipse);
  EXPECT_TRUE(d.contains({0.5, 0.5}));
  EXPECT_FALSE(d.contains({0.5, 0.8}));  // outside the 2:1 ellipse
  EXPECT_LT(d.bbox_lo().y, d.bbox_hi().y);
}

class MeshGenerationTest
    : public ::testing::TestWithParam<std::tuple<DomainShape, int>> {};

TEST_P(MeshGenerationTest, ExactCountConnectedPlanarish) {
  const auto [shape, n] = GetParam();
  Rng rng(99);
  const Domain domain(shape);
  const Mesh mesh = generate_mesh(domain, static_cast<VertexId>(n), rng);

  EXPECT_EQ(mesh.graph.num_vertices(), n);
  EXPECT_EQ(mesh.points.size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(mesh.graph.has_coordinates());
  EXPECT_TRUE(is_connected(mesh.graph));
  // Planar graph bound: |E| <= 3|V| - 6.
  EXPECT_LE(mesh.graph.num_edges(), 3 * static_cast<std::int64_t>(n) - 6);
  // FE-style meshes keep modest degrees.
  for (VertexId v = 0; v < mesh.graph.num_vertices(); ++v) {
    EXPECT_LE(mesh.graph.degree(v), 14);
  }
  // All points inside the domain.
  for (const auto& p : mesh.points) {
    EXPECT_TRUE(domain.contains(p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, MeshGenerationTest,
    ::testing::Combine(::testing::Values(DomainShape::kRectangle,
                                         DomainShape::kDisc,
                                         DomainShape::kEllipse,
                                         DomainShape::kAnnulus,
                                         DomainShape::kLShape),
                       ::testing::Values(60, 144)));

TEST(Mesh, DeterministicForSameSeed) {
  Rng rng1(5);
  Rng rng2(5);
  const Domain d(DomainShape::kRectangle);
  const Mesh a = generate_mesh(d, 80, rng1);
  const Mesh b = generate_mesh(d, 80, rng2);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i], b.points[i]);
  }
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
}

TEST(Mesh, DensifyPreservesOldVertices) {
  Rng rng(7);
  const Domain d(DomainShape::kRectangle);
  const Mesh base = generate_mesh(d, 100, rng);
  const Mesh grown = densify_mesh(base, d, 25, rng);
  ASSERT_EQ(grown.graph.num_vertices(), 125);
  for (std::size_t i = 0; i < base.points.size(); ++i) {
    EXPECT_EQ(grown.points[i], base.points[i]) << "old vertex " << i << " moved";
  }
  EXPECT_TRUE(is_connected(grown.graph));
}

TEST(Mesh, DensifyIsLocal) {
  Rng rng(21);
  const Domain d(DomainShape::kRectangle);
  const Mesh base = generate_mesh(d, 150, rng);
  const Mesh grown = densify_mesh(base, d, 30, rng, 0.15);
  // New points concentrate in a disc: their bounding box must be far
  // smaller than the domain.
  double lox = 1e9;
  double hix = -1e9;
  double loy = 1e9;
  double hiy = -1e9;
  for (std::size_t i = base.points.size(); i < grown.points.size(); ++i) {
    lox = std::min(lox, grown.points[i].x);
    hix = std::max(hix, grown.points[i].x);
    loy = std::min(loy, grown.points[i].y);
    hiy = std::max(hiy, grown.points[i].y);
  }
  EXPECT_LE(hix - lox, 0.35);
  EXPECT_LE(hiy - loy, 0.35);
}

TEST(Mesh, PaperMeshSizesExact) {
  for (VertexId n : {78, 88, 98, 118, 139, 144, 167, 183, 213, 243, 249, 279,
                     309}) {
    const Mesh mesh = paper_mesh(n);
    EXPECT_EQ(mesh.graph.num_vertices(), n) << "size " << n;
    EXPECT_TRUE(is_connected(mesh.graph)) << "size " << n;
  }
}

TEST(Mesh, PaperMeshDeterministicAcrossCalls) {
  const Mesh a = paper_mesh(144);
  const Mesh b = paper_mesh(144);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (VertexId v = 0; v < a.graph.num_vertices(); ++v) {
    EXPECT_EQ(a.graph.degree(v), b.graph.degree(v));
  }
}

TEST(Mesh, PaperIncrementalMeshSizes) {
  const Mesh base = paper_mesh(118);
  const Mesh grown = paper_incremental_mesh(base, 118, 21);
  EXPECT_EQ(grown.graph.num_vertices(), 139);
  EXPECT_TRUE(is_connected(grown.graph));
  for (std::size_t i = 0; i < base.points.size(); ++i) {
    EXPECT_EQ(grown.points[i], base.points[i]);
  }
}

TEST(Mesh, InvalidArgumentsRejected) {
  Rng rng(1);
  const Domain d(DomainShape::kRectangle);
  EXPECT_THROW(generate_mesh(d, 3, rng), Error);
  MeshOptions bad;
  bad.jitter = 0.7;
  EXPECT_THROW(generate_mesh(d, 50, rng, bad), Error);
  const Mesh base = generate_mesh(d, 50, rng);
  EXPECT_THROW(densify_mesh(base, d, 0, rng), Error);
  EXPECT_THROW(densify_mesh(base, d, 5, rng, 0.0), Error);
}

TEST(Mesh, AnnulusGraphAvoidsHoleCrossings) {
  Rng rng(31);
  const Domain d(DomainShape::kAnnulus);
  const Mesh mesh = generate_mesh(d, 160, rng);
  // Count edges whose midpoint falls inside the hole; the triangle filter
  // plus stitching should keep these to (almost) none.
  int crossings = 0;
  for (VertexId v = 0; v < mesh.graph.num_vertices(); ++v) {
    for (VertexId u : mesh.graph.neighbors(v)) {
      if (u <= v) continue;
      const Point2 mid = 0.5 * (mesh.graph.coordinate(v) +
                                mesh.graph.coordinate(u));
      const double r2 = squared_distance(mid, {0.5, 0.5});
      if (r2 < 0.18 * 0.18) ++crossings;
    }
  }
  EXPECT_LE(crossings, 2);
}

TEST(DomainName, AllNamed) {
  EXPECT_STREQ(domain_name(DomainShape::kRectangle), "rectangle");
  EXPECT_STREQ(domain_name(DomainShape::kDisc), "disc");
  EXPECT_STREQ(domain_name(DomainShape::kEllipse), "ellipse");
  EXPECT_STREQ(domain_name(DomainShape::kAnnulus), "annulus");
  EXPECT_STREQ(domain_name(DomainShape::kLShape), "l-shape");
}

}  // namespace
}  // namespace gapart
