#include "graph/delaunay.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace gapart {
namespace {

TEST(Orient2d, SignConvention) {
  EXPECT_GT(orient2d({0, 0}, {1, 0}, {0, 1}), 0.0);  // CCW
  EXPECT_LT(orient2d({0, 0}, {0, 1}, {1, 0}), 0.0);  // CW
  EXPECT_DOUBLE_EQ(orient2d({0, 0}, {1, 1}, {2, 2}), 0.0);  // collinear
}

TEST(InCircumcircle, UnitTriangle) {
  const Point2 a{0, 0};
  const Point2 b{1, 0};
  const Point2 c{0, 1};
  // Circumcircle of this right triangle: centre (0.5, 0.5), radius sqrt(.5).
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.5, 0.5}));
  EXPECT_TRUE(in_circumcircle(a, b, c, {0.9, 0.9}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {2.0, 2.0}));
  EXPECT_FALSE(in_circumcircle(a, b, c, {-1.0, -1.0}));
}

TEST(Delaunay, SingleTriangle) {
  const auto tris = delaunay_triangulate({{0, 0}, {1, 0}, {0.5, 1.0}});
  ASSERT_EQ(tris.size(), 1u);
  std::set<VertexId> verts = {tris[0].a, tris[0].b, tris[0].c};
  EXPECT_EQ(verts.size(), 3u);
}

TEST(Delaunay, SquareGivesTwoTriangles) {
  const auto tris =
      delaunay_triangulate({{0, 0}, {1, 0}, {1, 1.05}, {0, 1}});
  EXPECT_EQ(tris.size(), 2u);
}

TEST(Delaunay, TriangleCountMatchesEulerFormula) {
  // For a Delaunay triangulation of n points with h on the convex hull:
  // triangles = 2n - h - 2.
  Rng rng(3);
  std::vector<Point2> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.uniform(), rng.uniform()});
  }
  const auto tris = delaunay_triangulate(pts);
  const auto edges = triangulation_edges(tris);
  // Euler: V - E + F = 2 with F = triangles + outer face.
  EXPECT_EQ(static_cast<std::int64_t>(pts.size()) -
                static_cast<std::int64_t>(edges.size()) +
                static_cast<std::int64_t>(tris.size()) + 1,
            2);
}

TEST(Delaunay, EmptyCircumcircleProperty) {
  Rng rng(11);
  std::vector<Point2> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(), rng.uniform()});
  }
  const auto tris = delaunay_triangulate(pts);
  ASSERT_FALSE(tris.empty());
  for (const auto& t : tris) {
    for (std::size_t p = 0; p < pts.size(); ++p) {
      const auto v = static_cast<VertexId>(p);
      if (v == t.a || v == t.b || v == t.c) continue;
      EXPECT_FALSE(in_circumcircle(pts[static_cast<std::size_t>(t.a)],
                                   pts[static_cast<std::size_t>(t.b)],
                                   pts[static_cast<std::size_t>(t.c)],
                                   pts[p]))
          << "point " << p << " inside circumcircle of (" << t.a << ","
          << t.b << "," << t.c << ")";
    }
  }
}

TEST(Delaunay, TrianglesAreCcw) {
  Rng rng(13);
  std::vector<Point2> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back({rng.uniform(), rng.uniform()});
  }
  for (const auto& t : delaunay_triangulate(pts)) {
    EXPECT_GT(orient2d(pts[static_cast<std::size_t>(t.a)],
                       pts[static_cast<std::size_t>(t.b)],
                       pts[static_cast<std::size_t>(t.c)]),
              0.0);
  }
}

TEST(Delaunay, DuplicatePointsRejected) {
  EXPECT_THROW(
      delaunay_triangulate({{0, 0}, {1, 0}, {0, 1}, {1, 0}}),
      Error);
}

TEST(Delaunay, TooFewPointsRejected) {
  EXPECT_THROW(delaunay_triangulate({{0, 0}, {1, 1}}), Error);
}

TEST(Delaunay, GridPointsWithJitterRobust) {
  // Near-degenerate (grid-aligned) points plus tiny jitter must triangulate
  // without crashing and cover all points.
  Rng rng(17);
  std::vector<Point2> pts;
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      pts.push_back({c + 1e-7 * rng.uniform(), r + 1e-7 * rng.uniform()});
    }
  }
  const auto tris = delaunay_triangulate(pts);
  std::set<VertexId> used;
  for (const auto& t : tris) {
    used.insert(t.a);
    used.insert(t.b);
    used.insert(t.c);
  }
  EXPECT_EQ(used.size(), pts.size());
}

TEST(TriangulationEdges, DeduplicatesSharedEdges) {
  // Two triangles sharing edge (1,2).
  const std::vector<Triangle> tris = {{0, 1, 2}, {1, 3, 2}};
  const auto edges = triangulation_edges(tris);
  EXPECT_EQ(edges.size(), 5u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
}

}  // namespace
}  // namespace gapart
