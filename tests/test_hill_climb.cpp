#include "core/hill_climb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/assert.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"

namespace gapart {
namespace {

Assignment random_assignment(VertexId n, PartId k, std::uint64_t seed) {
  Rng rng(seed);
  Assignment a(static_cast<std::size_t>(n));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(k));
  return a;
}

std::uint64_t fnv1a(const Assignment& a) {
  std::uint64_t h = 14695981039346656037ULL;
  for (PartId p : a) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
    h *= 1099511628211ULL;
  }
  return h;
}

/// Deterministic integer-weighted graph used by the sweep goldens (integer
/// weights keep every gain computation exact, so the goldens are bitwise
/// stable across any algebraically equivalent refactor of the gain kernel).
Graph golden_weighted_graph() {
  Rng rng(777);
  GraphBuilder b(60);
  for (VertexId i = 0; i + 1 < 60; ++i) {
    b.add_edge(i, i + 1, 1.0 + rng.uniform_int(5));
  }
  for (int e = 0; e < 120; ++e) {
    const auto u = static_cast<VertexId>(rng.uniform_int(60));
    const auto v = static_cast<VertexId>(rng.uniform_int(60));
    const double w = 1.0 + rng.uniform_int(5);
    if (u != v) b.add_edge(u, v, w);
  }
  for (VertexId v = 0; v < 60; ++v) {
    b.set_vertex_weight(v, 1.0 + rng.uniform_int(3));
  }
  return b.build();
}

TEST(HillClimb, FixesSingleMisplacedVertex) {
  // Path split 0|1 with one vertex stranded on the wrong side.
  const Graph g = make_path(8);
  Assignment a = {0, 0, 0, 1, 0, 1, 1, 1};  // vertex 4 misplaced
  HillClimbOptions opt;
  const auto res = hill_climb(g, a, 2, opt);
  EXPECT_GT(res.moves, 0);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(HillClimb, MonotoneNonDecreasingFitness) {
  Rng rng(3);
  const Mesh mesh = paper_mesh(98);
  for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
    for (int trial = 0; trial < 5; ++trial) {
      Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
      for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
      HillClimbOptions opt;
      opt.fitness = {obj, 1.0};
      opt.max_passes = 10;
      const double before = evaluate_fitness(mesh.graph, a, 4, opt.fitness);
      const auto res = hill_climb(mesh.graph, a, 4, opt);
      const double after = evaluate_fitness(mesh.graph, a, 4, opt.fitness);
      EXPECT_GE(after, before);
      EXPECT_NEAR(after - before, res.fitness_gain, 1e-9);
    }
  }
}

TEST(HillClimb, StopsAtLocalOptimum) {
  const Graph g = make_two_cliques(6);
  Assignment a(12, 0);
  for (std::size_t i = 6; i < 12; ++i) a[i] = 1;  // already optimal
  HillClimbOptions opt;
  opt.max_passes = 10;
  const auto res = hill_climb(g, a, 2, opt);
  EXPECT_EQ(res.moves, 0);
  EXPECT_EQ(res.passes, 1);  // one scan that finds nothing
}

TEST(HillClimb, RespectsPassBudget) {
  Rng rng(7);
  const Mesh mesh = paper_mesh(144);
  Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(8));
  HillClimbOptions opt;
  opt.max_passes = 2;
  const auto res = hill_climb(mesh.graph, a, 8, opt);
  EXPECT_LE(res.passes, 2);
}

TEST(HillClimb, OnlyBoundaryVerticesConsidered) {
  // Well-separated blocks: interior vertices must not move even with many
  // passes (they are never boundary).
  const Graph g = make_grid(4, 8);
  Assignment a(32);
  for (VertexId v = 0; v < 32; ++v) {
    a[static_cast<std::size_t>(v)] = (v % 8 < 4) ? 0 : 1;
  }
  HillClimbOptions opt;
  opt.max_passes = 5;
  hill_climb(g, a, 2, opt);
  // Column 0 and column 7 vertices are interior to their parts.
  for (VertexId r = 0; r < 4; ++r) {
    EXPECT_EQ(a[static_cast<std::size_t>(r * 8)], 0);
    EXPECT_EQ(a[static_cast<std::size_t>(r * 8 + 7)], 1);
  }
}

TEST(HillClimb, StateOverloadMatchesChromosomeOverload) {
  Rng rng(11);
  const Graph g = make_grid(6, 6);
  Assignment a(36);
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(3));
  Assignment b = a;

  HillClimbOptions opt;
  hill_climb(g, a, 3, opt);

  PartitionState state(g, b, 3);
  hill_climb(state, opt);
  EXPECT_EQ(a, state.assignment());
}

// ---------------------------------------------------------------------------
// Sweep-mode goldens: every value below was captured from the pre-kernel
// implementation (commit a5da5d1, per-candidate neighbor_parts()+move_gain()
// probing).  Sweep mode must stay bit-identical to that behaviour — same
// passes, same moves, same accumulated gain, same final fitness and
// assignment — so the paper tables are unaffected by the refactor.
struct SweepGolden {
  std::string label;
  int passes;
  int moves;
  double fitness_gain;
  double final_fitness;
  std::uint64_t assignment_hash;
};

TEST(HillClimbGolden, SweepBitIdenticalToPreKernelImplementation) {
  const Graph g16 = make_grid(16, 16);
  const Graph g64 = make_grid(64, 64);
  const Graph gw = golden_weighted_graph();

  const auto run = [](const Graph& g, PartId k, std::uint64_t seed,
                      Objective obj, int max_passes, const SweepGolden& gold) {
    PartitionState state(g, random_assignment(g.num_vertices(), k, seed), k);
    HillClimbOptions opt;
    opt.fitness = {obj, 1.0};
    opt.max_passes = max_passes;
    const HillClimbResult res = hill_climb(state, opt);
    EXPECT_EQ(res.passes, gold.passes) << gold.label;
    EXPECT_EQ(res.moves, gold.moves) << gold.label;
    EXPECT_EQ(res.fitness_gain, gold.fitness_gain) << gold.label;  // bitwise
    EXPECT_EQ(state.fitness(opt.fitness), gold.final_fitness) << gold.label;
    EXPECT_EQ(fnv1a(state.assignment()), gold.assignment_hash) << gold.label;
  };

  // Captured by running the pre-refactor implementation on these exact
  // graphs, seeds, and options (hex-float literals are bit-exact).
  run(g16, 4, 123, Objective::kTotalComm, 10,
      {"grid16_k4_total", 5, 126, 0x1.dp+8, -0x1.7cp+8,
       0x245c7f5c9b8b7125ULL});
  run(g16, 4, 123, Objective::kWorstComm, 10,
      {"grid16_k4_worst", 2, 18, 0x1.1ap+7, -0x1.58p+7,
       0xd5c68d27687d992fULL});
  run(g64, 16, 2024, Objective::kTotalComm, 8,
      {"grid64_k16_total", 8, 2868, 0x1.718p+13, -0x1.fe8p+12,
       0xb93c10f15be2ec1bULL});
  run(gw, 5, 99, Objective::kTotalComm, 10,
      {"weighted_k5_total", 8, 53, 0x1.13p+9, -0x1.f6p+8,
       0xbe230a138b60bb0dULL});
  run(gw, 5, 99, Objective::kWorstComm, 10,
      {"weighted_k5_worst", 3, 17, 0x1.0cp+7, -0x1.76p+7,
       0x6ae0b42ae5806b9cULL});
}

// ---------------------------------------------------------------------------
// Frontier mode: same fixed-point class as sweep (no boundary vertex keeps
// an improving move), monotone, deterministic.
TEST(HillClimbFrontier, FixesSingleMisplacedVertex) {
  const Graph g = make_path(8);
  Assignment a = {0, 0, 0, 1, 0, 1, 1, 1};  // vertex 4 misplaced
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kFrontier;
  const auto res = hill_climb(g, a, 2, opt);
  EXPECT_GT(res.moves, 0);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(HillClimbFrontier, ReachesLocalOptimumAndIsMonotone) {
  Rng rng(17);
  const Mesh mesh = paper_mesh(144);
  for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
    for (int trial = 0; trial < 3; ++trial) {
      Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
      for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(6));
      HillClimbOptions opt;
      opt.fitness = {obj, 1.0};
      opt.mode = HillClimbMode::kFrontier;
      opt.max_passes = 100;  // enough to drain the worklist
      PartitionState state(mesh.graph, a, 6);
      const double before = state.fitness(opt.fitness);
      const auto res = hill_climb(state, opt);
      const double after = state.fitness(opt.fitness);
      EXPECT_GE(after, before);
      EXPECT_NEAR(after - before, res.fitness_gain, 1e-9);
      // Local optimum: no remaining boundary vertex has an improving move.
      for (const VertexId v : state.boundary_vertices()) {
        EXPECT_LT(state.best_move(v, opt.fitness, opt.min_gain).to, 0)
            << "vertex " << v << " still improvable";
      }
    }
  }
}

TEST(HillClimbFrontier, Deterministic) {
  const Graph g = make_grid(12, 12);
  const Assignment start = random_assignment(144, 5, 4242);
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kFrontier;
  opt.max_passes = 50;

  Assignment a = start;
  Assignment b = start;
  const auto ra = hill_climb(g, a, 5, opt);
  const auto rb = hill_climb(g, b, 5, opt);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.moves, rb.moves);
  EXPECT_EQ(ra.passes, rb.passes);
  EXPECT_EQ(ra.fitness_gain, rb.fitness_gain);
}

TEST(HillClimbFrontier, NoOpOnLocalOptimum) {
  const Graph g = make_two_cliques(6);
  Assignment a(12, 0);
  for (std::size_t i = 6; i < 12; ++i) a[i] = 1;  // already optimal
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kFrontier;
  opt.max_passes = 10;
  const auto res = hill_climb(g, a, 2, opt);
  EXPECT_EQ(res.moves, 0);
}

// ---------------------------------------------------------------------------
// Worklist-seeded repair: frontier mode starting from a caller-supplied
// vertex set (the damage), not the whole boundary.

// The damaged-grid generator (block partition + localized scramble) lives in
// bench_common so these fuzz tests validate exactly the regime
// bench/micro_incremental_repair measures.
using bench::DamagedGrid;
using bench::damaged_block_grid;

void expect_fixed_point(PartitionState& state, const HillClimbOptions& opt,
                        const char* label) {
  for (const VertexId v : state.boundary_vertices()) {
    EXPECT_LT(state.best_move(v, opt.fitness, opt.min_gain).to, 0)
        << label << ": vertex " << v << " still improvable";
  }
}

TEST(HillClimbSeeded, FixesDamageFromSeedsAlone) {
  const Graph g = make_path(8);
  Assignment a = {0, 0, 0, 1, 0, 1, 1, 1};  // vertex 4 misplaced
  PartitionState state(g, a, 2);
  HillClimbOptions opt;
  const std::vector<VertexId> seeds = {4};
  const auto res = hill_climb_from(state, seeds, opt);
  EXPECT_GT(res.moves, 0);
  const auto m = state.metrics();
  EXPECT_DOUBLE_EQ(0.5 * m.sum_part_cut, 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(HillClimbSeeded, OptionsSeedVerticesEquivalentToHillClimbFrom) {
  const Graph g = make_grid(16, 16);
  const DamagedGrid d = damaged_block_grid(16, 4, 20, 99);
  PartitionState sa(g, d.start, 4);
  PartitionState sb(g, d.start, 4);
  HillClimbOptions opt;
  opt.max_passes = 20;
  const auto ra = hill_climb_from(sa, d.damaged, opt);
  HillClimbOptions seeded = opt;
  seeded.mode = HillClimbMode::kFrontier;
  seeded.seed_vertices = d.damaged;
  const auto rb = hill_climb(sb, seeded);
  EXPECT_EQ(sa.assignment(), sb.assignment());
  EXPECT_EQ(ra.moves, rb.moves);
  EXPECT_EQ(ra.examined, rb.examined);
  EXPECT_EQ(ra.verify_rounds, rb.verify_rounds);
}

TEST(HillClimbSeeded, InteriorSeedsAreFilteredOut) {
  // Seeding from interior vertices (or an already-optimal region) is a
  // cheap no-op cascade followed by verification.
  const Graph g = make_two_cliques(6);
  Assignment a(12, 0);
  for (std::size_t i = 6; i < 12; ++i) a[i] = 1;  // already optimal
  PartitionState state(g, a, 2);
  HillClimbOptions opt;
  const std::vector<VertexId> seeds = {0, 1, 2};
  const auto res = hill_climb_from(state, seeds, opt);
  EXPECT_EQ(res.moves, 0);
  EXPECT_EQ(res.verify_rounds, 1);  // the owed fixed-point verification
}

TEST(HillClimbSeeded, SeedVertexOutOfRangeThrows) {
  const Graph g = make_path(8);
  Assignment a = {0, 0, 0, 0, 1, 1, 1, 1};
  PartitionState state(g, a, 2);
  HillClimbOptions opt;
  const std::vector<VertexId> seeds = {42};
  EXPECT_THROW(hill_climb_from(state, seeds, opt), Error);
}

TEST(HillClimbSeeded, SkippingVerificationStopsAtDrainedWorklist) {
  const Graph g = make_grid(24, 24);
  const DamagedGrid d = damaged_block_grid(24, 4, 12, 7);
  PartitionState state(g, d.start, 4);
  HillClimbOptions opt;
  opt.verify_fixed_point = false;
  const auto res = hill_climb_from(state, d.damaged, opt);
  EXPECT_EQ(res.verify_rounds, 0);
  // The cascade stayed local: nowhere near one probe per vertex.
  EXPECT_LT(res.examined, static_cast<std::int64_t>(g.num_vertices()) / 2);
}

TEST(HillClimbSeeded, EmptySeedSetWithoutVerificationIsNoOp) {
  // Regression: zero seeds used to read as "unseeded" and fall through to a
  // full-boundary frontier climb — the maximum cost for zero damage.
  const Graph g = make_grid(24, 24);
  const DamagedGrid d = damaged_block_grid(24, 4, 12, 7);
  PartitionState state(g, d.start, 4);
  HillClimbOptions opt;
  opt.verify_fixed_point = false;
  const auto res = hill_climb_from(state, {}, opt);
  EXPECT_EQ(res.moves, 0);
  EXPECT_EQ(res.examined, 0);
  EXPECT_EQ(res.passes, 0);
  EXPECT_EQ(state.assignment(), d.start);

  // The no-op path still enforces option preconditions — a misconfigured
  // caller fails the same way whatever its damage set.
  opt.min_gain = 0.0;
  EXPECT_THROW(hill_climb_from(state, {}, opt), Error);
}

TEST(HillClimbSeeded, EmptySeedSetWithVerificationReachesFixedPoint) {
  // With verification on, zero seeds means "just the verification rounds":
  // same result as an unseeded frontier climb.
  const Graph g = make_grid(24, 24);
  const DamagedGrid d = damaged_block_grid(24, 4, 12, 7);
  HillClimbOptions opt;
  opt.max_passes = 100;

  PartitionState seeded(g, d.start, 4);
  const auto res = hill_climb_from(seeded, {}, opt);
  EXPECT_GT(res.moves, 0);

  opt.mode = HillClimbMode::kFrontier;
  PartitionState frontier(g, d.start, 4);
  hill_climb(frontier, opt);
  EXPECT_EQ(seeded.assignment(), frontier.assignment());
}

// Fuzz: seeded repair lands in the same fixed-point class as full-boundary
// frontier climbing (and sweep) — no boundary vertex has an improving move —
// on perturbed block partitions of meshes and grids.
class SeededRepairFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SeededRepairFuzz, SameFixedPointClassAsFullBoundaryFrontier) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const VertexId n = 20 + 4 * (GetParam() % 3);  // 20/24/28 per seed
  const PartId k = 2 + GetParam() % 4;
  const Graph g = make_grid(n, n);
  const DamagedGrid d =
      damaged_block_grid(n, k, 8 + (GetParam() % 5) * 8, seed);

  HillClimbOptions opt;
  opt.max_passes = 100;
  opt.fitness = {GetParam() % 2 ? Objective::kWorstComm
                                : Objective::kTotalComm,
                 1.0};

  PartitionState seeded(g, d.start, k);
  const double before = seeded.fitness(opt.fitness);
  const auto res_seeded = hill_climb_from(seeded, d.damaged, opt);
  EXPECT_GE(seeded.fitness(opt.fitness), before);
  EXPECT_NEAR(seeded.fitness(opt.fitness) - before, res_seeded.fitness_gain,
              1e-9);
  expect_fixed_point(seeded, opt, "seeded");

  HillClimbOptions frontier = opt;
  frontier.mode = HillClimbMode::kFrontier;
  PartitionState full(g, d.start, k);
  hill_climb(full, frontier);
  expect_fixed_point(full, opt, "full boundary");
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededRepairFuzz, ::testing::Range(0, 12));

TEST(HillClimbSeeded, ExaminedScalesWithDamageNotGraphSize) {
  // Fixed damage, growing mesh: without verification the probe count is a
  // function of the cascade (damage-proportional), not of |V|; with
  // verification it additionally pays O(boundary) per round — still far
  // under |V|.
  constexpr int kDamage = 16;
  std::int64_t examined_small = 0;
  std::int64_t verified_small = 0;
  for (const VertexId n : {48, 96}) {
    const Graph g = make_grid(n, n);
    const DamagedGrid d = damaged_block_grid(n, 4, kDamage, 1234);
    PartitionState state(g, d.start, 4);
    HillClimbOptions opt;
    opt.verify_fixed_point = false;
    const auto res = hill_climb_from(state, d.damaged, opt);

    PartitionState verified(g, d.start, 4);
    HillClimbOptions vopt;
    const auto vres = hill_climb_from(verified, d.damaged, vopt);
    // Verification pays O(boundary) = O(k * sqrt(V)) per round — far below
    // one probe per vertex even on the small grid.
    EXPECT_LT(vres.examined, static_cast<std::int64_t>(g.num_vertices()) / 3)
        << "verification should cost O(boundary), not O(V)";
    expect_fixed_point(verified, vopt, "verified");

    if (n == 48) {
      examined_small = res.examined;
      verified_small = vres.examined;
    } else {
      // 4x the vertices must not mean 4x the probes: the seed cascade
      // tracks the damage (2x slack for boundary-shape noise), and the
      // verified climb tracks the boundary (2x the side length, well under
      // the 4x vertex ratio).
      EXPECT_LE(res.examined, 2 * examined_small + 16)
          << "small=" << examined_small << " large=" << res.examined;
      EXPECT_LE(vres.examined, 3 * verified_small)
          << "small=" << verified_small << " large=" << vres.examined;
    }
  }
}

// ---------------------------------------------------------------------------
// Strong guarantee of the chromosome overload: a failed precondition must
// not leave the caller's assignment moved-from.
TEST(HillClimb, ChromosomeOverloadStrongGuarantee) {
  const Graph g = make_grid(4, 4);
  Assignment genes(16, 0);
  for (std::size_t i = 8; i < 16; ++i) genes[i] = 1;
  const Assignment original = genes;

  HillClimbOptions opt;
  opt.max_passes = 0;  // invalid: needs at least one pass
  EXPECT_THROW(hill_climb(g, genes, 2, opt), Error);
  EXPECT_EQ(genes, original) << "genes moved-from after options failure";

  opt.max_passes = 4;
  genes[3] = 9;  // invalid part id for k = 2
  const Assignment bad = genes;
  EXPECT_THROW(hill_climb(g, genes, 2, opt), Error);
  EXPECT_EQ(genes, bad) << "genes moved-from after assignment failure";
  genes = original;

  opt.mode = HillClimbMode::kFrontier;
  opt.min_gain = 0.0;  // invalid in frontier mode
  EXPECT_THROW(hill_climb(g, genes, 2, opt), Error);
  EXPECT_EQ(genes, original) << "genes moved-from after min_gain failure";

  opt.min_gain = 1e-9;
  opt.seed_vertices = {99};  // out of range
  EXPECT_THROW(hill_climb(g, genes, 2, opt), Error);
  EXPECT_EQ(genes, original) << "genes moved-from after seed failure";

  // And the happy path still works after all those failures.
  opt.seed_vertices.clear();
  EXPECT_NO_THROW(hill_climb(g, genes, 2, opt));
}

// ---------------------------------------------------------------------------
// Gain-ordered frontier: hot (disturbed-neighbour) bucket before cold
// (just-moved) bucket.  Different move order, same fixed-point class.

TEST(HillClimbGainOrdered, ReachesSameFixedPointClassAsPlainFrontier) {
  Rng rng(0x90d);
  const Mesh mesh = paper_mesh(144);
  for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
    for (int trial = 0; trial < 3; ++trial) {
      Assignment start(static_cast<std::size_t>(mesh.graph.num_vertices()));
      for (auto& p : start) p = static_cast<PartId>(rng.uniform_int(5));

      HillClimbOptions opt;
      opt.fitness = {obj, 1.0};
      opt.mode = HillClimbMode::kFrontier;
      opt.max_passes = 100;
      opt.gain_ordered = true;

      PartitionState state(mesh.graph, start, 5);
      const double before = state.fitness(opt.fitness);
      const auto res = hill_climb(state, opt);
      const double after = state.fitness(opt.fitness);
      EXPECT_GE(after, before);
      EXPECT_NEAR(after - before, res.fitness_gain, 1e-9);
      // Fixed point: no boundary vertex has an improving move — exactly the
      // guarantee plain frontier and sweep give.
      for (const VertexId v : state.boundary_vertices()) {
        EXPECT_LT(state.best_move(v, opt.fitness, opt.min_gain).to, 0)
            << "vertex " << v << " still improvable";
      }
    }
  }
}

TEST(HillClimbGainOrdered, Deterministic) {
  const Graph g = make_grid(12, 12);
  const Assignment start = random_assignment(144, 5, 777);
  HillClimbOptions opt;
  opt.mode = HillClimbMode::kFrontier;
  opt.gain_ordered = true;
  opt.max_passes = 50;

  Assignment a = start;
  Assignment b = start;
  const auto ra = hill_climb(g, a, 5, opt);
  const auto rb = hill_climb(g, b, 5, opt);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.moves, rb.moves);
  EXPECT_EQ(ra.examined, rb.examined);
  EXPECT_EQ(ra.fitness_gain, rb.fitness_gain);
}

TEST(HillClimbGainOrdered, OffIsBitIdenticalToPlainFrontier) {
  // gain_ordered=false must leave frontier mode exactly as before — both
  // enqueue paths feed the same single bucket.
  const Graph g = make_grid(10, 10);
  const Assignment start = random_assignment(100, 4, 4141);
  HillClimbOptions plain;
  plain.mode = HillClimbMode::kFrontier;
  plain.max_passes = 50;
  HillClimbOptions off = plain;
  off.gain_ordered = false;

  Assignment a = start;
  Assignment b = start;
  const auto ra = hill_climb(g, a, 4, plain);
  const auto rb = hill_climb(g, b, 4, off);
  EXPECT_EQ(a, b);
  EXPECT_EQ(ra.moves, rb.moves);
  EXPECT_EQ(ra.examined, rb.examined);
  EXPECT_EQ(ra.passes, rb.passes);
}

TEST(HillClimbGainOrdered, ComposesWithSeededRepair) {
  const bench::DamagedGrid d = bench::damaged_block_grid(24, 4, 40, 0x5eed);
  const Graph g = make_grid(24, 24);
  HillClimbOptions opt;
  opt.gain_ordered = true;
  opt.max_passes = 50;
  PartitionState state(g, d.start, 4);
  const double before = state.fitness(opt.fitness);
  const auto res = hill_climb_from(state, d.damaged, opt);
  EXPECT_GE(state.fitness(opt.fitness), before);
  EXPECT_GT(res.moves, 0);
  for (const VertexId v : state.boundary_vertices()) {
    EXPECT_LT(state.best_move(v, opt.fitness, opt.min_gain).to, 0);
  }
}

TEST(HillClimb, WorstCommObjectiveReducesMaxCut) {
  Rng rng(13);
  const Mesh mesh = paper_mesh(144);
  Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
  const double before = compute_metrics(mesh.graph, a, 4).max_part_cut;
  HillClimbOptions opt;
  opt.fitness = {Objective::kWorstComm, 1.0};
  opt.max_passes = 20;
  hill_climb(mesh.graph, a, 4, opt);
  const auto m = compute_metrics(mesh.graph, a, 4);
  EXPECT_LT(m.max_part_cut + m.imbalance_sq, before + 1.0);
}

}  // namespace
}  // namespace gapart
