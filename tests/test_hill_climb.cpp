#include "core/hill_climb.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"

namespace gapart {
namespace {

TEST(HillClimb, FixesSingleMisplacedVertex) {
  // Path split 0|1 with one vertex stranded on the wrong side.
  const Graph g = make_path(8);
  Assignment a = {0, 0, 0, 1, 0, 1, 1, 1};  // vertex 4 misplaced
  HillClimbOptions opt;
  const auto res = hill_climb(g, a, 2, opt);
  EXPECT_GT(res.moves, 0);
  const auto m = compute_metrics(g, a, 2);
  EXPECT_DOUBLE_EQ(m.total_cut(), 1.0);
  EXPECT_DOUBLE_EQ(m.imbalance_sq, 0.0);
}

TEST(HillClimb, MonotoneNonDecreasingFitness) {
  Rng rng(3);
  const Mesh mesh = paper_mesh(98);
  for (Objective obj : {Objective::kTotalComm, Objective::kWorstComm}) {
    for (int trial = 0; trial < 5; ++trial) {
      Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
      for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
      HillClimbOptions opt;
      opt.fitness = {obj, 1.0};
      opt.max_passes = 10;
      const double before = evaluate_fitness(mesh.graph, a, 4, opt.fitness);
      const auto res = hill_climb(mesh.graph, a, 4, opt);
      const double after = evaluate_fitness(mesh.graph, a, 4, opt.fitness);
      EXPECT_GE(after, before);
      EXPECT_NEAR(after - before, res.fitness_gain, 1e-9);
    }
  }
}

TEST(HillClimb, StopsAtLocalOptimum) {
  const Graph g = make_two_cliques(6);
  Assignment a(12, 0);
  for (std::size_t i = 6; i < 12; ++i) a[i] = 1;  // already optimal
  HillClimbOptions opt;
  opt.max_passes = 10;
  const auto res = hill_climb(g, a, 2, opt);
  EXPECT_EQ(res.moves, 0);
  EXPECT_EQ(res.passes, 1);  // one scan that finds nothing
}

TEST(HillClimb, RespectsPassBudget) {
  Rng rng(7);
  const Mesh mesh = paper_mesh(144);
  Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(8));
  HillClimbOptions opt;
  opt.max_passes = 2;
  const auto res = hill_climb(mesh.graph, a, 8, opt);
  EXPECT_LE(res.passes, 2);
}

TEST(HillClimb, OnlyBoundaryVerticesConsidered) {
  // Well-separated blocks: interior vertices must not move even with many
  // passes (they are never boundary).
  const Graph g = make_grid(4, 8);
  Assignment a(32);
  for (VertexId v = 0; v < 32; ++v) {
    a[static_cast<std::size_t>(v)] = (v % 8 < 4) ? 0 : 1;
  }
  HillClimbOptions opt;
  opt.max_passes = 5;
  hill_climb(g, a, 2, opt);
  // Column 0 and column 7 vertices are interior to their parts.
  for (VertexId r = 0; r < 4; ++r) {
    EXPECT_EQ(a[static_cast<std::size_t>(r * 8)], 0);
    EXPECT_EQ(a[static_cast<std::size_t>(r * 8 + 7)], 1);
  }
}

TEST(HillClimb, StateOverloadMatchesChromosomeOverload) {
  Rng rng(11);
  const Graph g = make_grid(6, 6);
  Assignment a(36);
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(3));
  Assignment b = a;

  HillClimbOptions opt;
  hill_climb(g, a, 3, opt);

  PartitionState state(g, b, 3);
  hill_climb(state, opt);
  EXPECT_EQ(a, state.assignment());
}

TEST(HillClimb, WorstCommObjectiveReducesMaxCut) {
  Rng rng(13);
  const Mesh mesh = paper_mesh(144);
  Assignment a(static_cast<std::size_t>(mesh.graph.num_vertices()));
  for (auto& p : a) p = static_cast<PartId>(rng.uniform_int(4));
  const double before = compute_metrics(mesh.graph, a, 4).max_part_cut;
  HillClimbOptions opt;
  opt.fitness = {Objective::kWorstComm, 1.0};
  opt.max_passes = 20;
  hill_climb(mesh.graph, a, 4, opt);
  const auto m = compute_metrics(mesh.graph, a, 4);
  EXPECT_LT(m.max_part_cut + m.imbalance_sq, before + 1.0);
}

}  // namespace
}  // namespace gapart
