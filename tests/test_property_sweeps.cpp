// Cross-cutting parameterized property suites: invariants that must hold for
// EVERY combination of operator / objective / partitioner / graph family.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/rcb.hpp"
#include "baselines/rgb.hpp"
#include "common/rng.hpp"
#include "core/crossover.hpp"
#include "core/dpga.hpp"
#include "core/init.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"
#include "sfc/ibp.hpp"
#include "spectral/rsb.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::all_parts_used;
using testing::max_size_deviation;

// ---------------------------------------------------------------------------
// Crossover invariants: for every operator, offspring genes come from a
// parent at the same locus; loci where the parents agree are inherited
// verbatim; chromosome length is preserved.
class CrossoverInvariants
    : public ::testing::TestWithParam<std::tuple<CrossoverOp, int>> {};

TEST_P(CrossoverInvariants, OffspringRespectParents) {
  const auto [op, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(static_cast<int>(op) * 37 + k));
  const Mesh mesh = paper_mesh(78);
  const Graph& g = mesh.graph;

  for (int trial = 0; trial < 25; ++trial) {
    const auto pk = static_cast<PartId>(k);
    auto a = random_balanced_assignment(g.num_vertices(), pk, rng);
    auto b = random_balanced_assignment(g.num_vertices(), pk, rng);
    const auto ref = random_balanced_assignment(g.num_vertices(), pk, rng);
    CrossoverContext ctx;
    ctx.graph = &g;
    ctx.reference = &ref;
    Assignment c1;
    Assignment c2;
    apply_crossover(op, ctx, a, b, rng, c1, c2);
    ASSERT_EQ(c1.size(), a.size());
    ASSERT_EQ(c2.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(c1[i] == a[i] || c1[i] == b[i]);
      EXPECT_TRUE(c2[i] == a[i] || c2[i] == b[i]);
      if (a[i] == b[i]) {
        EXPECT_EQ(c1[i], a[i]);
        EXPECT_EQ(c2[i], a[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, CrossoverInvariants,
    ::testing::Combine(::testing::Values(CrossoverOp::kOnePoint,
                                         CrossoverOp::kTwoPoint,
                                         CrossoverOp::kKPoint,
                                         CrossoverOp::kUniform,
                                         CrossoverOp::kKnux,
                                         CrossoverOp::kDknux),
                       ::testing::Values(2, 4, 8)));

// ---------------------------------------------------------------------------
// GA progress: from a random start, every operator must strictly improve
// best fitness on an easy structured instance, under both objectives.
class GaProgress
    : public ::testing::TestWithParam<std::tuple<CrossoverOp, Objective>> {};

TEST_P(GaProgress, ImprovesOnCliqueChain) {
  const auto [op, objective] = GetParam();
  const Graph g = make_clique_chain(4, 5);
  GaConfig cfg;
  cfg.num_parts = 4;
  cfg.population_size = 60;
  cfg.crossover = op;
  cfg.fitness.objective = objective;
  cfg.max_generations = 80;
  Rng rng(static_cast<std::uint64_t>(static_cast<int>(op) * 10 +
                                     static_cast<int>(objective)));
  // Unbalanced uniform-random start: every operator has easy imbalance
  // repairs available, so progress must be strict.
  std::vector<Assignment> init;
  for (int i = 0; i < cfg.population_size; ++i) {
    init.push_back(random_uniform_assignment(g.num_vertices(), 4, rng));
  }
  GaEngine engine(g, cfg, std::move(init), rng.split());
  const double before = engine.best().fitness;
  while (engine.generation() < cfg.max_generations) engine.step();
  EXPECT_GT(engine.best().fitness, before)
      << crossover_name(op) << " / " << objective_name(objective);
}

INSTANTIATE_TEST_SUITE_P(
    OperatorsAndObjectives, GaProgress,
    ::testing::Combine(::testing::Values(CrossoverOp::kOnePoint,
                                         CrossoverOp::kTwoPoint,
                                         CrossoverOp::kUniform,
                                         CrossoverOp::kKnux,
                                         CrossoverOp::kDknux),
                       ::testing::Values(Objective::kTotalComm,
                                         Objective::kWorstComm)));

// ---------------------------------------------------------------------------
// Partitioner contracts: valid, balanced, all parts used — for every
// classical method, on every mesh shape, across part counts.
enum class Method { kRsb, kRcb, kRgb, kIbp, kIbpHilbert };

class PartitionerContract
    : public ::testing::TestWithParam<std::tuple<Method, DomainShape, int>> {};

TEST_P(PartitionerContract, BalancedValidComplete) {
  const auto [method, shape, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(static_cast<int>(method) * 100 +
                                     static_cast<int>(shape) * 10 + k));
  const Mesh mesh = generate_mesh(Domain(shape), 130, rng);
  const auto pk = static_cast<PartId>(k);

  Assignment a;
  switch (method) {
    case Method::kRsb:
      a = rsb_partition(mesh.graph, pk, rng);
      break;
    case Method::kRcb:
      a = rcb_partition(mesh.graph, pk, rng);
      break;
    case Method::kRgb:
      a = rgb_partition(mesh.graph, pk, rng);
      break;
    case Method::kIbp:
      a = ibp_partition(mesh.graph, pk);
      break;
    case Method::kIbpHilbert: {
      IbpOptions opt;
      opt.scheme = IndexScheme::kHilbert;
      a = ibp_partition(mesh.graph, pk, opt);
      break;
    }
  }
  ASSERT_TRUE(is_valid_assignment(mesh.graph, a, pk));
  EXPECT_TRUE(all_parts_used(a, pk));
  EXPECT_LE(max_size_deviation(a, pk), 2);
  // A geometric/spectral partition of a mesh must beat a random one.
  Rng check_rng(1);
  const auto random =
      random_balanced_assignment(mesh.graph.num_vertices(), pk, check_rng);
  EXPECT_LT(compute_metrics(mesh.graph, a, pk).total_cut(),
            compute_metrics(mesh.graph, random, pk).total_cut());
}

INSTANTIATE_TEST_SUITE_P(
    MethodsShapesParts, PartitionerContract,
    ::testing::Combine(::testing::Values(Method::kRsb, Method::kRcb,
                                         Method::kRgb, Method::kIbp,
                                         Method::kIbpHilbert),
                       ::testing::Values(DomainShape::kRectangle,
                                         DomainShape::kDisc,
                                         DomainShape::kAnnulus),
                       ::testing::Values(2, 5, 8)));

// ---------------------------------------------------------------------------
// Mixed-seed population (portfolio seeding).
TEST(MixedPopulation, ContainsEverySeedVerbatim) {
  const Mesh mesh = paper_mesh(88);
  Rng rng(3);
  const std::vector<Assignment> seeds = {
      ibp_partition(mesh.graph, 4),
      rsb_partition(mesh.graph, 4, rng),
      rcb_partition(mesh.graph, 4, rng),
  };
  const auto pop = make_mixed_population(seeds, 12, 0.1, rng);
  ASSERT_EQ(pop.size(), 12u);
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    EXPECT_EQ(pop[s], seeds[s]) << "seed " << s << " not verbatim";
  }
  // Later clones differ from their seed.
  int perturbed = 0;
  for (std::size_t i = seeds.size(); i < pop.size(); ++i) {
    if (pop[i] != seeds[i % seeds.size()]) ++perturbed;
  }
  EXPECT_GE(perturbed, 7);
}

TEST(MixedPopulation, RejectsMismatchedSeeds) {
  Rng rng(5);
  const std::vector<Assignment> bad = {{0, 1}, {0, 1, 0}};
  EXPECT_THROW(make_mixed_population(bad, 4, 0.1, rng), Error);
  EXPECT_THROW(make_mixed_population({}, 4, 0.1, rng), Error);
}

TEST(MixedPopulation, GaWithPortfolioSeedsBeatsWorstSeed) {
  const Mesh mesh = paper_mesh(118);
  Rng rng(7);
  const std::vector<Assignment> seeds = {
      ibp_partition(mesh.graph, 4),
      rgb_partition(mesh.graph, 4, rng),
  };
  GaConfig cfg;
  cfg.num_parts = 4;
  cfg.population_size = 60;
  cfg.max_generations = 50;
  auto init = make_mixed_population(seeds, cfg.population_size, 0.1, rng);
  const auto res = run_ga(mesh.graph, cfg, std::move(init), rng.split());
  for (const auto& seed : seeds) {
    EXPECT_GE(res.best_fitness,
              evaluate_fitness(mesh.graph, seed, 4, cfg.fitness));
  }
}

}  // namespace
}  // namespace gapart
