// The deterministic fault injector: schedule reproducibility, nth-call mode,
// counters, and the RAII scope guard.  The injector class itself is always
// compiled; only the GAPART_FAULT_POINT seam is build-gated.
#include "common/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace gapart {
namespace {

TEST(FaultInjection, DisarmedNeverFails) {
  FaultInjector& inj = FaultInjector::instance();
  inj.disarm();
  inj.reset_counts();
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.should_fail(FaultSite::kWalAppend));
  }
  // Disarmed checks are not counted: the fast path is one atomic load.
  EXPECT_EQ(inj.total_checked(), 0u);
  EXPECT_EQ(inj.total_injected(), 0u);
}

TEST(FaultInjection, ScheduleIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    ScopedFaultInjection scope(seed, 0.3);
    std::vector<bool> verdicts;
    FaultInjector& inj = FaultInjector::instance();
    for (int i = 0; i < 200; ++i) {
      verdicts.push_back(inj.should_fail(FaultSite::kWalFsync));
    }
    return verdicts;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // a different seed is a different schedule
}

TEST(FaultInjection, SitesHaveIndependentSchedules) {
  ScopedFaultInjection scope(7, 0.5);
  FaultInjector& inj = FaultInjector::instance();
  std::vector<bool> append;
  std::vector<bool> fsync;
  for (int i = 0; i < 100; ++i) {
    append.push_back(inj.should_fail(FaultSite::kWalAppend));
    fsync.push_back(inj.should_fail(FaultSite::kWalFsync));
  }
  EXPECT_NE(append, fsync);
}

TEST(FaultInjection, ProbabilityRoughlyHonored) {
  ScopedFaultInjection scope(123, 0.3);
  FaultInjector& inj = FaultInjector::instance();
  for (int i = 0; i < 2000; ++i) {
    inj.should_fail(FaultSite::kFileWrite);
  }
  const auto counts = inj.counts(FaultSite::kFileWrite);
  EXPECT_EQ(counts.checked, 2000u);
  // Deterministic for this seed; the band just documents "about 30%".
  EXPECT_GT(counts.injected, 450u);
  EXPECT_LT(counts.injected, 750u);
}

TEST(FaultInjection, ExtremeProbabilities) {
  {
    ScopedFaultInjection scope(1, 0.0);
    FaultInjector& inj = FaultInjector::instance();
    for (int i = 0; i < 50; ++i) {
      EXPECT_FALSE(inj.should_fail(FaultSite::kDeltaAlloc));
    }
  }
  {
    ScopedFaultInjection scope(1, 1.0);
    FaultInjector& inj = FaultInjector::instance();
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(inj.should_fail(FaultSite::kDeltaAlloc));
    }
  }
}

TEST(FaultInjection, NthCallModeFailsExactlyOnce) {
  ScopedFaultInjection scope(FaultSite::kWalAppend, 3);
  FaultInjector& inj = FaultInjector::instance();
  std::vector<bool> verdicts;
  for (int i = 0; i < 6; ++i) {
    verdicts.push_back(inj.should_fail(FaultSite::kWalAppend));
  }
  EXPECT_EQ(verdicts, (std::vector<bool>{false, false, true, false, false,
                                         false}));
  // Other sites are untouched in nth mode.
  EXPECT_FALSE(inj.should_fail(FaultSite::kWalFsync));
  EXPECT_FALSE(inj.should_fail(FaultSite::kWalFsync));
  EXPECT_FALSE(inj.should_fail(FaultSite::kWalFsync));

  const auto counts = inj.counts(FaultSite::kWalAppend);
  EXPECT_EQ(counts.checked, 6u);
  EXPECT_EQ(counts.injected, 1u);
}

TEST(FaultInjection, ScopeRestoresDisarmedAndClearsCounts) {
  FaultInjector& inj = FaultInjector::instance();
  {
    ScopedFaultInjection scope(9, 1.0);
    EXPECT_TRUE(inj.armed());
    EXPECT_TRUE(inj.should_fail(FaultSite::kTaskStart));
    EXPECT_GT(inj.total_injected(), 0u);
  }
  EXPECT_FALSE(inj.armed());
  EXPECT_EQ(inj.total_checked(), 0u);
  EXPECT_EQ(inj.total_injected(), 0u);
  EXPECT_FALSE(inj.should_fail(FaultSite::kTaskStart));
}

TEST(FaultInjection, SiteNamesAreStable) {
  EXPECT_STREQ(fault_site_name(FaultSite::kWalAppend), "wal_append");
  EXPECT_STREQ(fault_site_name(FaultSite::kWalFsync), "wal_fsync");
  EXPECT_STREQ(fault_site_name(FaultSite::kFileWrite), "file_write");
  EXPECT_STREQ(fault_site_name(FaultSite::kDeltaAlloc), "delta_alloc");
  EXPECT_STREQ(fault_site_name(FaultSite::kTaskStart), "task_start");
}

TEST(FaultInjection, CompiledSeamMatchesBuildFlag) {
#ifdef GAPART_FAULT_INJECTION
  // The macro must consult the injector in instrumented builds.
  ScopedFaultInjection scope(5, 1.0);
  EXPECT_TRUE(GAPART_FAULT_POINT(FaultSite::kWalAppend));
#else
  // And fold to constant false when compiled out.
  EXPECT_FALSE(GAPART_FAULT_POINT(FaultSite::kWalAppend));
#endif
}

}  // namespace
}  // namespace gapart
