#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.hpp"
#include "core/init.hpp"
#include "core/mutation.hpp"
#include "core/selection.hpp"
#include "graph/generators.hpp"
#include "graph/mesh.hpp"
#include "graph/partition.hpp"
#include "test_util.hpp"

namespace gapart {
namespace {

using testing::max_size_deviation;
using testing::part_sizes;

TEST(PointMutation, RateZeroChangesNothing) {
  Rng rng(3);
  Assignment a(100, 1);
  EXPECT_EQ(point_mutation(a, 4, 0.0, rng), 0);
  for (PartId p : a) EXPECT_EQ(p, 1);
}

TEST(PointMutation, RateOneChangesEverythingToOtherParts) {
  Rng rng(5);
  Assignment a(100, 1);
  EXPECT_EQ(point_mutation(a, 4, 1.0, rng), 100);
  for (PartId p : a) {
    EXPECT_NE(p, 1);  // always a *different* part
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 4);
  }
}

TEST(PointMutation, EmpiricalRateMatchesConfigured) {
  Rng rng(7);
  int changed = 0;
  constexpr int kTrials = 200;
  constexpr int kGenes = 500;
  for (int t = 0; t < kTrials; ++t) {
    Assignment a(kGenes, 0);
    changed += point_mutation(a, 8, 0.01, rng);
  }
  const double rate =
      static_cast<double>(changed) / (kTrials * kGenes);
  EXPECT_NEAR(rate, 0.01, 0.002);
}

TEST(PointMutation, SinglePartIsNoOp) {
  Rng rng(9);
  Assignment a(10, 0);
  EXPECT_EQ(point_mutation(a, 1, 1.0, rng), 0);
}

TEST(PointMutation, OtherPartsUniform) {
  Rng rng(11);
  std::map<PartId, int> counts;
  for (int t = 0; t < 30000; ++t) {
    Assignment a(1, 2);
    point_mutation(a, 4, 1.0, rng);
    ++counts[a[0]];
  }
  EXPECT_EQ(counts.count(2), 0u);
  for (PartId p : {0, 1, 3}) {
    EXPECT_NEAR(counts[p], 10000, 400) << "part " << p;
  }
}

TEST(BoundaryMutation, OnlyBoundaryVerticesMove) {
  const Graph g = make_path(9);
  Rng rng(13);
  Assignment a = {0, 0, 0, 0, 1, 1, 1, 1, 1};
  boundary_mutation(a, g, 2, 1.0, rng);
  // Interior vertices (0..2, 5..8) cannot have moved; only 3 and 4 may.
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 0);
  EXPECT_EQ(a[2], 0);
  EXPECT_EQ(a[6], 1);
  EXPECT_EQ(a[8], 1);
}

TEST(BoundaryMutation, MovesIntoAdjacentPartsOnly) {
  const Graph g = make_path(6);
  Rng rng(17);
  for (int t = 0; t < 100; ++t) {
    Assignment a = {0, 0, 1, 1, 2, 2};
    boundary_mutation(a, g, 3, 1.0, rng);
    // Vertex 0 touches only part 0/…: its only neighbour (1) is part 0, so
    // it never moves; vertex 2 may only become 0 or stay 1, never 2.
    EXPECT_EQ(a[0], 0);
    EXPECT_NE(a[2], 2);
  }
}

TEST(PerturbBySwaps, PreservesPartSizes) {
  Rng rng(19);
  Assignment a(60);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<PartId>(i % 4);
  }
  const auto before = part_sizes(a, 4);
  perturb_by_swaps(a, 30, rng);
  EXPECT_EQ(part_sizes(a, 4), before);
}

TEST(PerturbBySwaps, ActuallyPerturbs) {
  Rng rng(21);
  Assignment a(60);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<PartId>(i % 4);
  }
  const Assignment original = a;
  perturb_by_swaps(a, 30, rng);
  EXPECT_NE(a, original);
}

TEST(Selection, TournamentPrefersFitter) {
  std::vector<Individual> pop(10);
  for (std::size_t i = 0; i < 10; ++i) {
    pop[i].fitness = static_cast<double>(i);  // individual 9 is best
    pop[i].evaluated = true;
  }
  Rng rng(23);
  const Selector sel(pop, SelectionScheme::kTournament, 3);
  double mean = 0.0;
  constexpr int kDraws = 20000;
  for (int d = 0; d < kDraws; ++d) {
    mean += static_cast<double>(sel.draw(rng));
  }
  mean /= kDraws;
  // Expected index of max of 3 uniform draws from 0..9 is ~6.8.
  EXPECT_GT(mean, 6.0);
  EXPECT_LT(mean, 7.6);
}

TEST(Selection, TournamentSizeOneIsUniform) {
  std::vector<Individual> pop(5);
  for (std::size_t i = 0; i < 5; ++i) {
    pop[i].fitness = static_cast<double>(i);
    pop[i].evaluated = true;
  }
  Rng rng(29);
  const Selector sel(pop, SelectionScheme::kTournament, 1);
  std::vector<int> counts(5, 0);
  for (int d = 0; d < 25000; ++d) {
    ++counts[sel.draw(rng)];
  }
  for (int c : counts) EXPECT_NEAR(c, 5000, 300);
}

TEST(Selection, RouletteHandlesNegativeFitness) {
  // Partitioning fitness is always <= 0; roulette must still give better
  // individuals more weight without crashing.
  std::vector<Individual> pop(4);
  pop[0].fitness = -100.0;
  pop[1].fitness = -50.0;
  pop[2].fitness = -20.0;
  pop[3].fitness = -10.0;
  for (auto& ind : pop) ind.evaluated = true;
  Rng rng(31);
  const Selector sel(pop, SelectionScheme::kRoulette, 2);
  std::vector<int> counts(4, 0);
  for (int d = 0; d < 40000; ++d) ++counts[sel.draw(rng)];
  EXPECT_GT(counts[3], counts[0]);
  EXPECT_GT(counts[2], counts[0]);
  for (int c : counts) EXPECT_GT(c, 0);  // floor weight keeps everyone alive
}

TEST(Selection, RouletteAllEqualIsUniform) {
  std::vector<Individual> pop(4);
  for (auto& ind : pop) {
    ind.fitness = -7.0;
    ind.evaluated = true;
  }
  Rng rng(37);
  const Selector sel(pop, SelectionScheme::kRoulette, 2);
  std::vector<int> counts(4, 0);
  for (int d = 0; d < 20000; ++d) ++counts[sel.draw(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(Selection, RankLinearPressure) {
  std::vector<Individual> pop(4);
  pop[0].fitness = -1000.0;  // rank 3 (worst) -> weight 1
  pop[1].fitness = -5.0;     // rank 1 -> weight 3
  pop[2].fitness = -500.0;   // rank 2 -> weight 2
  pop[3].fitness = -1.0;     // rank 0 (best) -> weight 4
  for (auto& ind : pop) ind.evaluated = true;
  Rng rng(41);
  const Selector sel(pop, SelectionScheme::kRank, 2);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 50000;
  for (int d = 0; d < kDraws; ++d) ++counts[sel.draw(rng)];
  // Expected proportions 4:3:2:1 over indices 3,1,2,0.
  EXPECT_NEAR(counts[3], kDraws * 0.4, kDraws * 0.02);
  EXPECT_NEAR(counts[1], kDraws * 0.3, kDraws * 0.02);
  EXPECT_NEAR(counts[2], kDraws * 0.2, kDraws * 0.02);
  EXPECT_NEAR(counts[0], kDraws * 0.1, kDraws * 0.02);
}

TEST(Selection, NamesParse) {
  EXPECT_EQ(parse_selection("tournament"), SelectionScheme::kTournament);
  EXPECT_EQ(parse_selection("roulette"), SelectionScheme::kRoulette);
  EXPECT_EQ(parse_selection("rank"), SelectionScheme::kRank);
  EXPECT_THROW(parse_selection("lottery"), Error);
}

TEST(Selection, EmptyPopulationRejected) {
  std::vector<Individual> pop;
  EXPECT_THROW(Selector(pop, SelectionScheme::kTournament, 2), Error);
}

TEST(Init, RandomBalancedIsBalanced) {
  Rng rng(43);
  for (PartId k : {2, 3, 8}) {
    const auto a = random_balanced_assignment(100, k, rng);
    EXPECT_LE(max_size_deviation(a, k), 1) << "k=" << k;
  }
}

TEST(Init, RandomBalancedIsRandom) {
  Rng rng(47);
  const auto a = random_balanced_assignment(64, 2, rng);
  const auto b = random_balanced_assignment(64, 2, rng);
  EXPECT_NE(a, b);
}

TEST(Init, RandomUniformInRange) {
  Rng rng(53);
  const auto a = random_uniform_assignment(500, 5, rng);
  for (PartId p : a) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5);
  }
}

TEST(Init, IncrementalSeedKeepsOldAndBalances) {
  const Mesh base = paper_mesh(118);
  const Mesh grown = paper_incremental_mesh(base, 118, 41);
  Rng rng(59);
  const auto prev = random_balanced_assignment(118, 8, rng);
  const auto seeded =
      incremental_seed_assignment(grown.graph, prev, 8, rng);
  for (std::size_t v = 0; v < prev.size(); ++v) {
    ASSERT_EQ(seeded[v], prev[v]);
  }
  EXPECT_LE(max_size_deviation(seeded, 8), 1);
}

TEST(Init, IncrementalSeedRandomizesNewNodes) {
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 20);
  Rng rng(61);
  const auto prev = random_balanced_assignment(78, 4, rng);
  const auto s1 = incremental_seed_assignment(grown.graph, prev, 4, rng);
  const auto s2 = incremental_seed_assignment(grown.graph, prev, 4, rng);
  EXPECT_NE(s1, s2);  // random placement of new nodes
}

TEST(Init, SeededPopulationContainsSeedFirst) {
  Rng rng(67);
  const auto seed = random_balanced_assignment(60, 4, rng);
  const auto pop = make_seeded_population(seed, 10, 0.1, rng);
  ASSERT_EQ(pop.size(), 10u);
  EXPECT_EQ(pop[0], seed);
  int identical = 0;
  for (const auto& member : pop) {
    if (member == seed) ++identical;
    EXPECT_EQ(part_sizes(member, 4), part_sizes(seed, 4));  // swaps only
  }
  EXPECT_LE(identical, 2);  // clones are actually perturbed
}

TEST(Init, RandomPopulationSizeAndValidity) {
  Rng rng(71);
  const auto pop = make_random_population(50, 4, 8, rng);
  ASSERT_EQ(pop.size(), 8u);
  for (const auto& member : pop) {
    EXPECT_LE(max_size_deviation(member, 4), 1);
  }
}

TEST(Init, IncrementalPopulationAllExtendPrevious) {
  const Mesh base = paper_mesh(78);
  const Mesh grown = paper_incremental_mesh(base, 78, 10);
  Rng rng(73);
  const auto prev = random_balanced_assignment(78, 4, rng);
  const auto pop =
      make_incremental_population(grown.graph, prev, 4, 6, 0.05, rng);
  ASSERT_EQ(pop.size(), 6u);
  // First member: unperturbed extension.
  for (std::size_t v = 0; v < prev.size(); ++v) {
    EXPECT_EQ(pop[0][v], prev[v]);
  }
  for (const auto& member : pop) {
    EXPECT_TRUE(is_valid_assignment(grown.graph, member, 4));
    EXPECT_LE(max_size_deviation(member, 4), 1);
  }
}

}  // namespace
}  // namespace gapart
